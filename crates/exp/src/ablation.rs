//! Ablations called out in DESIGN.md.
//!
//! * **ABL-1** — badness-coefficient sensitivity: re-run the
//!   link-overload scenarios with degenerate α/β/γ settings and compare the
//!   adaptation win;
//! * **ABL-2** — cluster-aware random stealing vs. plain random stealing
//!   (van Nieuwpoort et al.'s result, reproduced on the DES);
//! * **ABL-3** — the opportunistic-migration extension (paper §7) on
//!   scenario 5, where the paper explicitly notes what the extension would
//!   buy.

use crate::parallel;
use crate::scenarios::{Scenario, ScenarioId};
use sagrid_adapt::BadnessCoefficients;
use sagrid_simgrid::{AdaptMode, RunResult, StealPolicy};

/// One row of the badness-coefficient ablation.
#[derive(Clone, Debug)]
pub struct CoeffRow {
    /// Human-readable variant name.
    pub name: &'static str,
    /// The coefficients used.
    pub coefficients: BadnessCoefficients,
    /// Adaptive total runtime (seconds) under these coefficients.
    pub adapt_runtime_secs: f64,
    /// Runtime improvement over the non-adaptive baseline.
    pub improvement: f64,
}

/// ABL-1: runs `scenario` across coefficient variants. Use a scenario where
/// the *node-level* removal path fires (scenario 3's overloaded CPUs —
/// scenario 4's bad link is handled by the exceptional-cluster rule, which
/// does not consult the coefficients). The full formula should match or
/// beat every degenerate variant.
pub fn badness_coefficients(scenario: &Scenario) -> Vec<CoeffRow> {
    let variants: [(&'static str, BadnessCoefficients); 5] = [
        ("paper (α=1, β=100, γ=10)", BadnessCoefficients::default()),
        (
            "speed only (α=1, β=0, γ=0)",
            BadnessCoefficients {
                alpha: 1.0,
                beta: 0.0,
                gamma: 0.0,
            },
        ),
        (
            "ic-overhead only (α=0, β=100, γ=0)",
            BadnessCoefficients {
                alpha: 0.0,
                beta: 100.0,
                gamma: 0.0,
            },
        ),
        (
            "no worst-cluster bonus (γ=0)",
            BadnessCoefficients {
                alpha: 1.0,
                beta: 100.0,
                gamma: 0.0,
            },
        ),
        (
            "weak β (α=1, β=10, γ=10)",
            BadnessCoefficients {
                alpha: 1.0,
                beta: 10.0,
                gamma: 10.0,
            },
        ),
    ];
    // One batch: the non-adaptive baseline plus the whole coefficient grid.
    let mut configs = vec![scenario.config(AdaptMode::NoAdapt)];
    configs.extend(variants.iter().map(|(_, coefficients)| {
        let mut cfg = scenario.config(AdaptMode::Adapt);
        cfg.policy.coefficients = *coefficients;
        cfg
    }));
    let mut results = parallel::run_batch(configs).into_iter();
    let t1 = results
        .next()
        .expect("baseline result")
        .total_runtime
        .as_secs_f64();
    variants
        .into_iter()
        .zip(results)
        .map(|((name, coefficients), r)| {
            let t2 = r.total_runtime.as_secs_f64();
            CoeffRow {
                name,
                coefficients,
                adapt_runtime_secs: t2,
                improvement: if t1 > 0.0 { 1.0 - t2 / t1 } else { 0.0 },
            }
        })
        .collect()
}

/// ABL-2: cluster-aware vs. plain random stealing on the ideal scenario
/// (wide-area latency hiding). Returns `(crs, random_global)`.
pub fn crs_vs_random(scenario: &Scenario) -> (RunResult, RunResult) {
    let mut crs_cfg = scenario.config(AdaptMode::NoAdapt);
    crs_cfg.steal_policy = StealPolicy::ClusterAware;
    let mut rnd_cfg = scenario.config(AdaptMode::NoAdapt);
    rnd_cfg.steal_policy = StealPolicy::RandomGlobal;
    run_pair(crs_cfg, rnd_cfg)
}

/// ABL-3: scenario 5 with and without the opportunistic-migration
/// extension. Returns `(off, on)`.
pub fn opportunistic_migration() -> (RunResult, RunResult) {
    let scenario = Scenario::new(ScenarioId::S5CpusAndLink);
    let mut cfg = scenario.config(AdaptMode::Adapt);
    cfg.policy.opportunistic_migration = true;
    run_pair(scenario.config(AdaptMode::Adapt), cfg)
}

/// ABL-4: the load-aware benchmarking optimization (paper §3.2/§7:
/// "combining benchmarking with monitoring … would reduce the benchmarking
/// overhead to almost zero, since the processor load is not changing, the
/// benchmarks would only need to be run at the beginning"). Returns
/// `(off, on)` monitor-only runs of `scenario` — compare
/// `benchmark_fraction()`.
pub fn load_aware_benchmarking(scenario: &Scenario) -> (RunResult, RunResult) {
    let mut cfg = scenario.config(AdaptMode::MonitorOnly);
    cfg.policy.load_aware_benchmarking = true;
    run_pair(scenario.config(AdaptMode::MonitorOnly), cfg)
}

/// Runs an A/B pair as one two-job batch.
fn run_pair(a: sagrid_simgrid::SimConfig, b: sagrid_simgrid::SimConfig) -> (RunResult, RunResult) {
    let mut results = parallel::run_batch(vec![a, b]).into_iter();
    let first = results.next().expect("two results");
    let second = results.next().expect("two results");
    (first, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::SubScenario;
    use sagrid_simgrid::GridSim;

    #[test]
    fn crs_beats_random_global_stealing() {
        // Use the expanding scenario's 24-node 3-cluster layout: plenty of
        // wide-area traffic for the policies to differ on.
        let s = Scenario::quick(ScenarioId::S2Expand(SubScenario::C));
        let (crs, rnd) = crs_vs_random(&s);
        assert!(
            crs.total_runtime <= rnd.total_runtime,
            "CRS ({}) should not lose to random stealing ({})",
            crs.total_runtime,
            rnd.total_runtime
        );
    }

    #[test]
    fn load_aware_benchmarking_cuts_overhead_in_the_stable_scenario() {
        // Scenario 1: no load changes, so benchmarks only run at start.
        // Use a run long enough to span several monitoring periods.
        let mut s = Scenario::quick(ScenarioId::S1Overhead);
        s.iterations = 40;
        let (off, on) = load_aware_benchmarking(&s);
        assert!(
            on.benchmark_fraction() < off.benchmark_fraction() * 0.5,
            "load-aware: {} vs periodic: {}",
            on.benchmark_fraction(),
            off.benchmark_fraction()
        );
        assert!(
            on.aggregate.benchmark.0 > 0,
            "the initial benchmark still runs"
        );
    }

    #[test]
    fn load_aware_benchmarking_still_detects_overload() {
        // Scenario 3: the load change at t=200s must trigger re-benchmarks
        // so adaptation still removes the overloaded nodes.
        let mut s = Scenario::new(ScenarioId::S3OverloadedCpus);
        s.iterations = 40;
        let mut cfg = s.config(AdaptMode::Adapt);
        cfg.policy.load_aware_benchmarking = true;
        let adaptive = GridSim::run(cfg);
        assert!(
            adaptive
                .decisions
                .iter()
                .any(|d| d.decision.kind() == "remove-nodes"),
            "overloaded nodes must still be detected: {:?}",
            adaptive.decisions
        );
    }

    #[test]
    fn coefficient_ablation_produces_all_variants() {
        let s = Scenario::quick(ScenarioId::S3OverloadedCpus);
        let rows = badness_coefficients(&s);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.adapt_runtime_secs > 0.0));
    }
}
