//! # sagrid-exp
//!
//! The experiment harness: reproduces **every table and figure** of the
//! paper's evaluation (§5) on the discrete-event grid emulation, plus the
//! ablations called out in DESIGN.md.
//!
//! * [`scenarios`] — the six evaluation scenarios: (1) adaptivity overhead,
//!   (2) expanding to more nodes (2a/2b/2c), (3) overloaded processors,
//!   (4) overloaded network link, (5) both at once, (6) crashing nodes;
//! * [`runner`] — executes a scenario in a given adaptation mode and
//!   gathers figure-ready series;
//! * [`parallel`] — fans independent simulation runs out over a scoped
//!   worker pool, order-preserving so all outputs stay byte-identical to a
//!   serial run (`SAGRID_THREADS` / `--serial` control the pool size);
//! * [`chart`] — ASCII figure rendering (iteration-duration plots, bar
//!   charts) for the terminal;
//! * [`report`] — renders the paper-style outputs (Figure 1 runtime bars,
//!   Figures 3–7 iteration-duration series, the scenario-1 overhead table)
//!   as text and CSV;
//! * [`ablation`] — badness-coefficient sensitivity, CRS vs. plain random
//!   stealing, and the opportunistic-migration extension (paper §7).
//!
//! Run everything with `cargo run -p sagrid-exp --release -- --all`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ablation;
pub mod chart;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod scenarios;

pub use runner::{run_scenario, run_scenarios, ScenarioOutcome};
pub use scenarios::{Scenario, ScenarioId};
