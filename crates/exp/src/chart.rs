//! Terminal chart rendering: the paper's figures as ASCII plots.
//!
//! Figures 3–7 are iteration-duration line plots with two series; Figure 1
//! is a grouped bar chart. These renderers make the `experiments` binary's
//! output legible at a glance, mirroring the paper's visual story (the
//! non-adaptive series staying degraded while the adaptive one steps back
//! down).

use std::fmt::Write as _;

/// Renders a two-series scatter/line plot: `a` (non-adaptive, `x`) and `b`
/// (adaptive, `o`) against iteration index. Fixed height, auto-scaled.
pub fn dual_series_plot(title: &str, a: &[f64], b: &[f64], height: usize) -> String {
    let n = a.len().max(b.len());
    if n == 0 || height < 2 {
        return format!("{title}\n(no data)\n");
    }
    let max = a
        .iter()
        .chain(b.iter())
        .fold(0.0_f64, |m, &v| m.max(v))
        .max(1e-9);
    let mut grid = vec![vec![' '; n]; height];
    let place = |grid: &mut Vec<Vec<char>>, series: &[f64], mark: char| {
        for (i, &v) in series.iter().enumerate() {
            let row = ((v / max) * (height - 1) as f64).round() as usize;
            let row = (height - 1).saturating_sub(row);
            let cell = &mut grid[row][i];
            // Overlapping points show as '*'.
            *cell = if *cell == ' ' { mark } else { '*' };
        }
    };
    place(&mut grid, a, 'x');
    place(&mut grid, b, 'o');
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "  x = no adaptation, o = with adaptation, * = both");
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>7.1}s")
        } else if r == height - 1 {
            format!("{:>7.1}s", 0.0)
        } else {
            "        ".to_string()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(s, "{label} |{line}");
    }
    let _ = writeln!(s, "         +{}", "-".repeat(n));
    let _ = writeln!(s, "          iteration 0..{}", n - 1);
    s
}

/// Renders a horizontal bar chart of `(label, value)` pairs, auto-scaled to
/// `width` characters.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let max = rows.iter().fold(0.0_f64, |m, &(_, v)| m.max(v)).max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(s, "  {label:<label_w$} |{} {value:.1}", "#".repeat(bar),);
    }
    s
}

/// Renders per-node activity traces as an ASCII Gantt chart over
/// `[t0, t1]`, sampling each node's activity at `width` points. Codes:
/// `B` busy, `M` benchmark, `l` local comm, `w` wide-area comm, `.` idle,
/// space = not a member.
pub fn gantt(
    title: &str,
    traces: &[(sagrid_core::ids::NodeId, sagrid_simgrid::NodeTrace)],
    t0: f64,
    t1: f64,
    width: usize,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "  B busy  M benchmark  l local-comm  w wide-comm  . idle"
    );
    if t1 <= t0 || width == 0 {
        return s;
    }
    let step = (t1 - t0) / width as f64;
    for (node, trace) in traces {
        let mut row = String::with_capacity(width);
        let spans = trace.spans();
        let mut idx = 0usize;
        for i in 0..width {
            let t = t0 + (i as f64 + 0.5) * step;
            while idx < spans.len() && spans[idx].end.as_secs_f64() < t {
                idx += 1;
            }
            let c = spans
                .get(idx)
                .filter(|sp| sp.start.as_secs_f64() <= t)
                .map_or(' ', |sp| sp.kind.code());
            row.push(c);
        }
        let _ = writeln!(s, "  {:>5} |{row}|", node.to_string());
    }
    let _ = writeln!(s, "        t = {t0:.0}s .. {t1:.0}s");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_renders_both_series_and_scales() {
        let a = vec![10.0, 20.0, 30.0, 30.0];
        let b = vec![10.0, 15.0, 10.0, 10.0];
        let p = dual_series_plot("test", &a, &b, 8);
        assert!(p.contains('x'));
        assert!(p.contains('o'));
        assert!(p.contains("30.0s"), "max label missing:\n{p}");
        // Row 0 (the max row) must contain the non-adaptive marks.
        let max_row = p.lines().nth(2).expect("rows exist");
        assert!(max_row.contains('x'), "max row: {max_row}");
    }

    #[test]
    fn overlapping_points_are_starred() {
        let a = vec![10.0];
        let b = vec![10.0];
        let p = dual_series_plot("t", &a, &b, 4);
        assert!(p.contains('*'));
    }

    #[test]
    fn empty_series_do_not_panic() {
        let p = dual_series_plot("t", &[], &[], 5);
        assert!(p.contains("no data"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let rows = vec![("small".to_string(), 10.0), ("large".to_string(), 100.0)];
        let c = bar_chart("bars", &rows, 20);
        let lines: Vec<&str> = c.lines().collect();
        let small_bar = lines[1].matches('#').count();
        let large_bar = lines[2].matches('#').count();
        assert_eq!(large_bar, 20);
        assert_eq!(small_bar, 2);
    }

    #[test]
    fn gantt_samples_span_kinds() {
        use sagrid_core::ids::NodeId;
        use sagrid_core::time::SimTime;
        use sagrid_simgrid::{NodeTrace, SpanKind};
        let mut tr = NodeTrace::default();
        tr.push(SimTime::from_secs(0), SimTime::from_secs(5), SpanKind::Busy);
        tr.push(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            SpanKind::Idle,
        );
        let g = gantt("g", &[(NodeId(3), tr)], 0.0, 10.0, 10);
        assert!(g.contains("n3"));
        let row = g.lines().nth(2).expect("row");
        assert!(row.contains('B') && row.contains('.'), "{row}");
    }

    #[test]
    fn zero_values_render() {
        let rows = vec![("zero".to_string(), 0.0)];
        let c = bar_chart("bars", &rows, 10);
        assert!(c.contains("zero"));
    }
}
