//! Paper-scenario regression suite: end-to-end checks tying the DES engine's
//! observability surface (activity traces, metrics registry, decision
//! provenance) to the paper's evaluation scenarios.
//!
//! - Scenarios 1 and 4 (monitor-only): per-node activity traces are a true
//!   partition of each node's lifetime and reconcile exactly with the
//!   coordinator-facing overhead accounting.
//! - Scenario 5 (shaped uplink + loaded CPUs): every coordinator decision is
//!   reconstructible from the emitted JSONL stream alone — the acceptance
//!   bar for decision provenance.
//! - Scenario 6 (crashing clusters): crashed clusters land on the blacklist
//!   and are never re-added, visible both in the decision log and in the
//!   join events of the metrics stream.

use sagrid_adapt::Decision;
use sagrid_core::ids::ClusterId;
use sagrid_core::metrics::{parse_json, JsonValue, Metrics};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_exp::scenarios::{Scenario, ScenarioId, DISTURBANCE_AT_SECS, SHAPED_UPLINK_BPS};
use sagrid_simgrid::provenance::reconstruct_decision;
use sagrid_simgrid::trace::SpanKind;
use sagrid_simgrid::{AdaptMode, GridSim, RunResult};

fn run_with_metrics(id: ScenarioId, iterations: usize) -> RunResult {
    let mut s = Scenario::new(id);
    s.iterations = iterations;
    GridSim::try_run_with_metrics(s.config(AdaptMode::Adapt), Metrics::enabled())
        .expect("paper scenarios are valid configurations")
}

/// Decision-event lines of a run's JSONL stream, parsed.
fn decision_lines(r: &RunResult) -> Vec<JsonValue> {
    r.metrics
        .as_ref()
        .expect("run was started with metrics enabled")
        .to_jsonl()
        .lines()
        .map(|l| parse_json(l).expect("every emitted line is valid JSON"))
        .filter(|v| {
            v.get("type").and_then(JsonValue::as_str) == Some("event")
                && v.get("kind").and_then(JsonValue::as_str) == Some("decision")
        })
        .collect()
}

#[test]
fn monitor_only_traces_partition_each_node_lifetime_and_match_the_stats() {
    // Scenarios 1 (ideal) and 4 (shaped uplink) keep membership static in
    // monitor-only mode, so every node lives [0, end-of-run] and its trace
    // must tile that interval exactly: ordered, non-overlapping, gap-free.
    for id in [ScenarioId::S1Overhead, ScenarioId::S4OverloadedLink] {
        let mut s = Scenario::new(id);
        s.iterations = 16;
        let mut cfg = s.config(AdaptMode::MonitorOnly);
        cfg.record_trace = true;
        let r = GridSim::run(cfg);
        assert!(!r.timed_out, "{id:?} must finish its workload");
        assert_eq!(r.activity_traces.len(), 36, "one trace per node ({id:?})");

        let mut totals = [SimDuration::ZERO; 5];
        let kinds = [
            SpanKind::Busy,
            SpanKind::Idle,
            SpanKind::IntraComm,
            SpanKind::InterComm,
            SpanKind::Benchmark,
        ];
        let mut common_end: Option<SimTime> = None;
        for (node, tr) in &r.activity_traces {
            assert!(tr.is_well_formed(), "{id:?} node {node}: malformed trace");
            let spans = tr.spans();
            assert!(!spans.is_empty(), "{id:?} node {node}: empty trace");
            assert_eq!(
                spans[0].start,
                SimTime::ZERO,
                "{id:?} node {node}: trace must start at join time 0"
            );
            for w in spans.windows(2) {
                assert_eq!(
                    w[0].end, w[1].start,
                    "{id:?} node {node}: gap in trace — spans must partition the lifetime"
                );
            }
            let end = spans.last().unwrap().end;
            match common_end {
                None => common_end = Some(end),
                Some(e) => assert_eq!(
                    e, end,
                    "{id:?} node {node}: all static nodes flush at the same final time"
                ),
            }
            for (t, &k) in totals.iter_mut().zip(&kinds) {
                *t += tr.total(k);
            }
        }
        // The shared end point covers the whole measured runtime.
        let end = common_end.expect("at least one trace");
        assert!(
            end.0 >= r.total_runtime.0,
            "{id:?}: traces end at {end:?}, before total runtime {:?}",
            r.total_runtime
        );

        // The per-kind span totals are the same accounting the coordinator
        // sees: they must reconcile with the aggregate overhead breakdown.
        // Spans and stats are fed from the same flush points, so the match
        // is exact, not just within rounding.
        let [busy, idle, intra, inter, bench] = totals;
        assert_eq!(busy, r.aggregate.busy, "{id:?}: busy mismatch");
        assert_eq!(idle, r.aggregate.idle, "{id:?}: idle mismatch");
        assert_eq!(intra, r.aggregate.intra_comm, "{id:?}: intra-comm mismatch");
        assert_eq!(inter, r.aggregate.inter_comm, "{id:?}: inter-comm mismatch");
        assert_eq!(bench, r.aggregate.benchmark, "{id:?}: benchmark mismatch");
        // And the partition property lifts to the aggregate: total accounted
        // time is exactly 36 nodes × the common end point.
        assert_eq!(
            r.aggregate.total(),
            SimDuration(end.0 * 36),
            "{id:?}: aggregate must equal nodes × lifetime"
        );
    }
}

#[test]
fn s5_every_decision_is_reconstructible_from_the_jsonl_stream_alone() {
    // The provenance acceptance bar: parse the emitted JSONL with no access
    // to the in-memory run, rebuild each decision record, and compare it
    // field-for-field (wa_eff, badness inputs, blacklist delta, learned
    // requirements) against the coordinator's own log.
    let r = run_with_metrics(ScenarioId::S5CpusAndLink, 40);
    assert!(!r.timed_out);
    assert!(
        !r.decisions.is_empty(),
        "scenario 5 must tick the coordinator at least once"
    );

    let lines = decision_lines(&r);
    assert_eq!(
        lines.len(),
        r.decisions.len(),
        "one decision event per coordinator decision"
    );
    for (line, entry) in lines.iter().zip(&r.decisions) {
        let rec = reconstruct_decision(line).expect("decision event reconstructs");
        assert!(
            rec.matches(entry),
            "JSONL reconstruction diverges from the decision log:\n  rebuilt: {rec:?}\n  logged:  {entry:?}"
        );
    }

    // The reconstruction alone is enough to tell the scenario's story: the
    // shaped cluster 2 was removed wholesale, and the blacklist snapshot of
    // every later decision still carries it.
    let recs: Vec<_> = lines
        .iter()
        .map(|l| reconstruct_decision(l).unwrap())
        .collect();
    let removal = recs
        .iter()
        .position(|rec| rec.kind == "remove-cluster" && rec.cluster == Some(ClusterId(2)))
        .expect("the shaped cluster must be removed");
    for rec in &recs[removal..] {
        assert!(
            rec.blacklisted_clusters.contains(&ClusterId(2)),
            "cluster 2 must stay blacklisted from the removal on"
        );
    }
}

#[test]
fn s5_removal_teaches_the_bandwidth_bound_and_recovers_efficiency() {
    let r = run_with_metrics(ScenarioId::S5CpusAndLink, 40);
    assert!(!r.timed_out, "the adaptive run must converge");

    // The removal decision carries a learned minimum-bandwidth requirement
    // in the vicinity of the shaped uplink — measured from transfer times,
    // so below the raw 100 KB/s shaping but far above a healthy link.
    let removal = r
        .decisions
        .iter()
        .find(|d| matches!(d.decision, Decision::RemoveCluster { cluster, .. } if cluster == ClusterId(2)))
        .expect("scenario 5 removes the shaped cluster");
    let bw = removal
        .learned
        .min_uplink_bps
        .expect("the removal must teach a bandwidth bound");
    assert!(
        (10_000.0..SHAPED_UPLINK_BPS * 10.0).contains(&bw),
        "learned bound {bw} should be near the shaped {SHAPED_UPLINK_BPS} B/s rate"
    );

    // Dropping the starved cluster improves the weighted-average efficiency
    // the coordinator observes at later ticks.
    let last = r.decisions.last().unwrap();
    assert!(
        last.wa_efficiency > removal.wa_efficiency,
        "efficiency must recover after the removal ({} -> {})",
        removal.wa_efficiency,
        last.wa_efficiency
    );
}

#[test]
fn s6_crashed_clusters_are_blacklisted_and_never_rejoined() {
    let r = run_with_metrics(ScenarioId::S6Crash, 32);
    assert!(!r.timed_out);
    // 24 of 36 nodes crash; adaptation must have replaced some of them from
    // the surviving cluster.
    assert!(r.final_node_count() > 12, "crashed capacity never replaced");

    // Once the crash is on the books, every subsequent decision snapshot
    // carries both crashed clusters on the blacklist, and no Add prefers or
    // targets them.
    let crashed = [ClusterId(1), ClusterId(2)];
    let first_aware = r
        .decisions
        .iter()
        .position(|d| crashed.iter().all(|c| d.blacklisted_clusters.contains(c)))
        .expect("some decision must see the crashed clusters blacklisted");
    for d in &r.decisions[first_aware..] {
        for c in &crashed {
            assert!(
                d.blacklisted_clusters.contains(c),
                "cluster {c} dropped off the blacklist at t={:?}",
                d.at
            );
        }
        if let Decision::Add { prefer, .. } = &d.decision {
            for c in &crashed {
                assert!(!prefer.contains(c), "Add must not prefer a crashed cluster");
            }
        }
    }

    // Cross-check against the metrics stream: the crash-cluster injections
    // fire at the disturbance time, and every join after it comes from the
    // surviving cluster 0.
    let jsonl = r.metrics.as_ref().unwrap().to_jsonl();
    let crash_at = SimTime::from_secs(DISTURBANCE_AT_SECS);
    let mut crash_injections = 0;
    let mut late_joins = 0;
    for line in jsonl.lines() {
        let v = parse_json(line).expect("valid JSON");
        if v.get("type").and_then(JsonValue::as_str) != Some("event") {
            continue;
        }
        let at = SimTime(v.get("at_us").and_then(JsonValue::as_u64).expect("at_us"));
        match v.get("kind").and_then(JsonValue::as_str) {
            Some("injection")
                if v.get("injection").and_then(JsonValue::as_str) == Some("crash_cluster") =>
            {
                crash_injections += 1;
                assert_eq!(at, crash_at, "clusters crash at the disturbance time");
                let c = v.get("cluster").and_then(JsonValue::as_u64).unwrap();
                assert!(crashed.contains(&ClusterId(c as u16)));
            }
            Some("join") if at > crash_at => {
                late_joins += 1;
                let c = v.get("cluster").and_then(JsonValue::as_u64).unwrap();
                assert_eq!(
                    ClusterId(c as u16),
                    ClusterId(0),
                    "a node re-joined from a blacklisted cluster"
                );
            }
            _ => {}
        }
    }
    assert_eq!(crash_injections, 2, "both cluster crashes must be logged");
    assert!(late_joins > 0, "replacements must appear as join events");

    // The crash counter agrees with the two sites' node counts.
    let report = r.metrics.as_ref().unwrap();
    assert_eq!(report.counter("des.node_crashes"), 24);
}
