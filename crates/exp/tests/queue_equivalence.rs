//! Heap-vs-wheel trace equivalence: the timer-wheel event queue must be
//! *observationally identical* to the binary-heap oracle, not just "close".
//!
//! Both backends promise the same `(time, sequence-number)` total order, so
//! a full scenario run — tens of thousands of events through steal
//! protocols, benchmarks, injections, crash recovery and adaptation — must
//! produce a byte-identical [`RunResult`], per-node activity traces
//! included. Any ordering divergence anywhere in the cascade/overflow
//! machinery shows up here as a diff in the first derailed field.

use sagrid_exp::scenarios::{Scenario, ScenarioId};
use sagrid_simgrid::{AdaptMode, GridSim, QueueBackend, RunResult};

fn run(id: ScenarioId, seed: u64, backend: QueueBackend) -> RunResult {
    let mut s = Scenario::new(id);
    s.seed = seed;
    let mut cfg = s.config(AdaptMode::Adapt);
    // Record traces so the comparison covers every activity transition of
    // every node, not just the aggregate statistics.
    cfg.record_trace = true;
    cfg.queue_backend = Some(backend);
    GridSim::try_run(cfg).expect("paper scenarios are valid configurations")
}

fn assert_identical(id: ScenarioId, seed: u64) {
    let wheel = run(id, seed, QueueBackend::Wheel);
    let heap = run(id, seed, QueueBackend::Heap);
    // Every RunResult field is a deterministic function of the event order
    // (virtual times, counters, traces — no wall-clock anywhere), so the
    // Debug rendering is a faithful byte-level fingerprint of the run.
    let (w, h) = (format!("{wheel:#?}"), format!("{heap:#?}"));
    if w != h {
        let diverged = w
            .lines()
            .zip(h.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("wheel: {a}\n heap: {b}"))
            .unwrap_or_else(|| "outputs differ in length".into());
        panic!("{id:?} seed {seed}: backends diverged\n{diverged}");
    }
    assert!(wheel.events_processed > 10_000, "{id:?}: run too trivial");
}

/// Scenario 1 (overhead measurement, no perturbations) replays identically
/// on both queue backends across several seeds.
#[test]
fn scenario1_wheel_matches_heap() {
    for seed in [0xDE5_0001, 0xDE5_0002, 0xDE5_0003] {
        assert_identical(ScenarioId::S1Overhead, seed);
    }
}

/// Scenario 4 (overloaded WAN link: shared-uplink queueing, wide-area steal
/// traffic under congestion) replays identically on both queue backends.
#[test]
fn scenario4_wheel_matches_heap() {
    for seed in [0xDE5_0004, 0xDE5_0005, 0xDE5_0006] {
        assert_identical(ScenarioId::S4OverloadedLink, seed);
    }
}
