//! Serial vs. parallel experiment execution must be byte-identical.
//!
//! The experiment driver fans independent simulation runs over a worker
//! pool; the whole point of the order-preserving collection is that every
//! rendered report is the same bytes whatever the pool size. This test runs
//! the same quick experiment set with one worker and with four and compares
//! the rendered text outputs character by character.

use sagrid_exp::report;
use sagrid_exp::runner::run_scenarios;
use sagrid_exp::scenarios::{Scenario, ScenarioId, SubScenario};
use sagrid_exp::{ablation, parallel};

/// Renders a quick subset of the experiment outputs: the Figure-1 runtime
/// bars over three scenarios, an iteration figure, and the ABL-1
/// coefficient table.
fn render_reports() -> String {
    let batch: Vec<(Scenario, bool)> = vec![
        (Scenario::quick(ScenarioId::S1Overhead), true),
        (Scenario::quick(ScenarioId::S2Expand(SubScenario::A)), false),
        (Scenario::quick(ScenarioId::S4OverloadedLink), false),
    ];
    let outcomes = run_scenarios(&batch);
    let mut out = report::figure1(&outcomes);
    out.push_str(&report::iteration_figure(
        "iteration durations",
        &outcomes[2],
    ));
    for row in ablation::badness_coefficients(&Scenario::quick(ScenarioId::S3OverloadedCpus)) {
        out.push_str(&format!(
            "{}: {:.3}s {:+.2}%\n",
            row.name,
            row.adapt_runtime_secs,
            row.improvement * 100.0
        ));
    }
    out
}

#[test]
fn parallel_and_serial_reports_are_byte_identical() {
    parallel::set_thread_override(Some(1));
    let serial = render_reports();
    parallel::set_thread_override(Some(4));
    let parallel_run = render_reports();
    parallel::set_thread_override(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel_run, "worker pool must not change output");
}
