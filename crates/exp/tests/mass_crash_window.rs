//! Regression for the crash-detection window (the bug this suite pins:
//! between a mass crash and its heartbeat-timeout detection the
//! coordinator used to see collapsed efficiency from not-yet-detected
//! dead members and shrink away survivors, failing efficiency recovery).
//!
//! The checked-in `scenarios/mass_crash.json` crashes 2 of 3 sites two
//! seconds before a coordinator tick (ticks fire at exact multiples of
//! the 30 s monitoring period), so an evaluation deterministically lands
//! *inside* the 3 s `fault_detection_delay` window. The suspicion
//! machinery must (a) actually be exercised — some decision carries a
//! non-empty suspect snapshot — and (b) never let a removal target a
//! suspect, certified by the `no-suspect-shrink` invariant from the JSONL
//! stream alone. The coordinator-level counterpart (the *old* policy
//! really does shrink survivors on the same inputs) lives in
//! `sagrid-adapt`'s `silence_blind_policy_shrinks_survivors_in_the_detection_window`.

use sagrid_core::json::parse_json;
use sagrid_core::metrics::Metrics;
use sagrid_scenario::{check_jsonl, InvariantConfig, ScenarioSpec};
use sagrid_simgrid::{AdaptMode, GridSim};
use std::path::PathBuf;

fn run_mass_crash() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/mass_crash.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let spec = ScenarioSpec::parse(&text).expect("mass_crash.json parses");
    let cfg = spec.sim_config(AdaptMode::Adapt).expect("valid config");
    let result = GridSim::try_run_with_metrics(cfg, Metrics::enabled()).expect("run completes");
    assert!(!result.timed_out, "mass-crash run timed out");
    result.metrics.expect("metrics enabled").to_jsonl()
}

#[test]
fn mass_crash_window_holds_fire_and_recovers() {
    let jsonl = run_mass_crash();

    // The full invariant suite — including efficiency recovery after the
    // crash and the fifth (no-suspect-shrink) invariant — passes on the
    // emitted stream alone.
    let inv = InvariantConfig {
        // Two monitoring periods past the crash (the run continues for
        // roughly a minute after it).
        settle_us: 60_000_000,
        expected_iterations: Some(12),
        ..InvariantConfig::default()
    };
    let violations = check_jsonl(&jsonl, &inv);
    assert!(violations.is_empty(), "violations: {violations:?}");

    // The window was really exercised: at least one evaluation ran while
    // victims were suspect (crash at 28 s, detection at 31 s, a tick at
    // 30 s), and no removal decision ever named a suspect.
    let mut suspect_decisions = 0usize;
    let mut suspect_marked = 0u64;
    let mut suspect_cleared = 0u64;
    for line in jsonl.lines() {
        let v = parse_json(line).expect("stream line parses");
        match v.get("type").and_then(|t| t.as_str()) {
            Some("event")
                if v.get("kind").and_then(|k| k.as_str()) == Some("decision")
                    && v.get("suspects")
                        .and_then(|s| s.as_arr())
                        .is_some_and(|a| !a.is_empty()) =>
            {
                suspect_decisions += 1;
            }
            Some("counter") => {
                let value = v.get("value").and_then(|x| x.as_u64()).unwrap_or(0);
                match v.get("name").and_then(|n| n.as_str()) {
                    Some("adapt.suspect.marked") => suspect_marked = value,
                    Some("adapt.suspect.cleared") => suspect_cleared = value,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    assert!(
        suspect_decisions > 0,
        "no coordinator evaluation landed inside the detection window — \
         the regression no longer exercises the bug"
    );
    // 24 victims (two full 12-node sites) went suspect at injection time
    // and every suspicion resolved at detection time.
    assert_eq!(suspect_marked, 24, "suspicions marked");
    assert_eq!(suspect_cleared, 24, "suspicions resolved");
}

#[test]
fn mass_crash_run_is_deterministic() {
    // Same seed ⇒ byte-identical stream: the regression is replayable.
    assert_eq!(run_mass_crash(), run_mass_crash());
}
