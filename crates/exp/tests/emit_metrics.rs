//! End-to-end tests for `--emit-metrics`: per-run JSONL metrics streams and
//! Gantt trace CSVs must be deterministic (byte-identical at any worker-pool
//! size), well-formed JSON, and must never perturb the simulation itself.
//!
//! These tests own the process-wide emit directory, so they live in their
//! own integration-test binary: nothing else here may call
//! `parallel::run_batch` concurrently.

use sagrid_core::metrics::parse_json;
use sagrid_exp::parallel::{run_batch_on, set_emit_dir};
use sagrid_exp::scenarios::{Scenario, ScenarioId};
use sagrid_simgrid::{AdaptMode, SimConfig};
use std::path::PathBuf;

fn batch() -> Vec<SimConfig> {
    // Paper-scale scenarios trimmed to 16 iterations: long enough for
    // coordinator ticks (and hence decision events), short enough for CI.
    let mut s1 = Scenario::new(ScenarioId::S1Overhead);
    s1.iterations = 16;
    let mut s4 = Scenario::new(ScenarioId::S4OverloadedLink);
    s4.iterations = 16;
    vec![
        s1.config(AdaptMode::NoAdapt),
        s1.config(AdaptMode::Adapt),
        s4.config(AdaptMode::NoAdapt),
        s4.config(AdaptMode::Adapt),
    ]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sagrid-emit-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn emitted_metrics_are_identical_serial_and_parallel() {
    let serial_dir = fresh_dir("serial");
    let parallel_dir = fresh_dir("parallel");

    set_emit_dir(Some(serial_dir.clone()));
    let serial = run_batch_on(batch(), 1);
    set_emit_dir(Some(parallel_dir.clone()));
    let parallel = run_batch_on(batch(), 4);
    set_emit_dir(None);

    // The runs themselves are unperturbed by metrics + tracing.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.iteration_durations, p.iteration_durations);
        assert_eq!(s.events_processed, p.events_processed);
        assert!(s.metrics.is_some(), "emit runs carry a metrics report");
    }
    // Per-run files exist under submission-order names and are
    // byte-identical whatever the worker count.
    for i in 0..4 {
        for name in [format!("run_{i:04}.jsonl"), format!("run_{i:04}_gantt.csv")] {
            let a = std::fs::read(serial_dir.join(&name)).expect("serial file");
            let b = std::fs::read(parallel_dir.join(&name)).expect("parallel file");
            assert!(!a.is_empty(), "{name} must not be empty");
            assert_eq!(a, b, "{name} differs between serial and parallel");
        }
    }

    // Every JSONL line parses as a JSON object with a "type" tag; the
    // adaptive overloaded-link run must include decision events.
    let adaptive = std::fs::read_to_string(serial_dir.join("run_0003.jsonl")).expect("jsonl");
    let mut decisions = 0;
    for line in adaptive.lines() {
        let v = parse_json(line).expect("every line is valid JSON");
        let ty = v.get("type").and_then(|t| t.as_str()).expect("type tag");
        assert!(
            ["event", "counter", "gauge", "histogram"].contains(&ty),
            "unexpected record type {ty}"
        );
        if ty == "event" && v.get("kind").and_then(|k| k.as_str()) == Some("decision") {
            decisions += 1;
        }
    }
    assert!(decisions > 0, "an adaptive run must log decision events");

    // The Gantt CSV has the documented header and node,start,end,kind rows.
    let gantt = std::fs::read_to_string(serial_dir.join("run_0003_gantt.csv")).expect("csv");
    let mut lines = gantt.lines();
    assert_eq!(lines.next(), Some("node,start,end,kind"));
    let first = lines.next().expect("at least one span");
    assert_eq!(first.split(',').count(), 4);

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}
