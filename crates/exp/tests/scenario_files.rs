//! The checked-in files under `scenarios/` are the data form of the
//! paper's hand-coded perturbation schedules. Two contracts hold:
//!
//! * every file is in the canonical form `ScenarioSpec::to_json`
//!   produces (parse → re-serialise is the identity on the bytes), and
//! * the paper files drive the DES to byte-identical JSONL traces as the
//!   hand-coded `Scenario` configurations they mirror.

use sagrid_core::metrics::Metrics;
use sagrid_exp::scenarios::{Scenario, ScenarioId, SubScenario};
use sagrid_scenario::ScenarioSpec;
use sagrid_simgrid::{AdaptMode, GridSim, SimConfig};
use std::path::PathBuf;

const ALL_FILES: &[&str] = &[
    "s1.json",
    "s2a.json",
    "s2b.json",
    "s2c.json",
    "s3.json",
    "s4.json",
    "s5.json",
    "s6.json",
    "diurnal.json",
    "flash_crowd.json",
    "correlated_failure.json",
    "brownout.json",
    "mass_crash.json",
];

fn read(file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn every_checked_in_file_is_canonical() {
    for file in ALL_FILES {
        let text = read(file);
        let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(
            spec.to_json(),
            text,
            "{file} is not in canonical `to_json` form"
        );
        spec.sim_config(AdaptMode::Adapt)
            .unwrap_or_else(|e| panic!("{file}: invalid config: {e}"));
    }
}

fn trace_of(cfg: SimConfig) -> String {
    let result = GridSim::try_run_with_metrics(cfg, Metrics::enabled()).expect("run fails");
    result.metrics.expect("metrics enabled").to_jsonl()
}

#[test]
fn paper_files_reproduce_hand_coded_runs_byte_for_byte() {
    let pairs: &[(&str, ScenarioId)] = &[
        ("s1.json", ScenarioId::S1Overhead),
        ("s2a.json", ScenarioId::S2Expand(SubScenario::A)),
        ("s2b.json", ScenarioId::S2Expand(SubScenario::B)),
        ("s2c.json", ScenarioId::S2Expand(SubScenario::C)),
        ("s3.json", ScenarioId::S3OverloadedCpus),
        ("s4.json", ScenarioId::S4OverloadedLink),
        ("s5.json", ScenarioId::S5CpusAndLink),
        ("s6.json", ScenarioId::S6Crash),
    ];
    for &(file, id) in pairs {
        let mut spec = ScenarioSpec::parse(&read(file)).unwrap();
        // Run the shortened variant (48 full iterations belong in the
        // experiment harness, not the test suite); `quick` keeps the same
        // seed, so the traces must still agree byte-for-byte.
        spec.iterations = Scenario::quick(id).iterations;
        let from_file = trace_of(spec.sim_config(AdaptMode::Adapt).unwrap());
        let hand_coded = trace_of(Scenario::quick(id).config(AdaptMode::Adapt));
        assert_eq!(
            from_file, hand_coded,
            "{file} diverges from the hand-coded schedule"
        );
    }
}
