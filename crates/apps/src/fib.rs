//! Fibonacci — the canonical Satin spawn/sync example.
//!
//! Useless as mathematics, perfect as a runtime stress test: the spawn tree
//! is huge, tasks are tiny, and any bookkeeping overhead or lost-task bug
//! shows up immediately as a wrong sum.

use sagrid_runtime::WorkerCtx;

/// Sequential reference.
pub fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// Parallel divide-and-conquer version with a sequential cutoff below
/// `threshold` (Satin programs use the same idiom to bound spawn overhead).
pub fn fib_par(ctx: &WorkerCtx<'_>, n: u64, threshold: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n <= threshold {
        return fib_seq(n);
    }
    let t = threshold;
    let a = ctx.spawn(move |ctx| fib_par(ctx, n - 1, t));
    let b = fib_par(ctx, n - 2, threshold);
    a.join(ctx) + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn sequential_base_cases() {
        assert_eq!(fib_seq(0), 0);
        assert_eq!(fib_seq(1), 1);
        assert_eq!(fib_seq(10), 55);
        assert_eq!(fib_seq(20), 6765);
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for n in [0u64, 1, 5, 18, 24] {
            let expected = fib_seq(n);
            assert_eq!(rt.run(move |ctx| fib_par(ctx, n, 10)), expected, "fib({n})");
        }
        rt.shutdown();
    }

    #[test]
    fn threshold_zero_still_correct() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        assert_eq!(rt.run(|ctx| fib_par(ctx, 14, 0)), fib_seq(14));
        rt.shutdown();
    }
}
