//! Parallel mergesort — a data-parallel divide-and-conquer kernel.
//!
//! Included because the Satin distribution ships exactly this class of
//! application, and because it stresses a different runtime axis than the
//! search codes: jobs return *large* results (sorted sub-arrays), which on
//! the grid translates into the subtree-proportional payloads the workload
//! model encodes.

use sagrid_runtime::WorkerCtx;
use std::sync::Arc;

/// Sequential mergesort (reference and sequential cutoff).
pub fn mergesort_seq<T: Ord + Clone>(data: &[T]) -> Vec<T> {
    if data.len() <= 1 {
        return data.to_vec();
    }
    let mid = data.len() / 2;
    let left = mergesort_seq(&data[..mid]);
    let right = mergesort_seq(&data[mid..]);
    merge(&left, &right)
}

fn merge<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Parallel mergesort over a shared immutable input: halves are spawned
/// until ranges shrink below `cutoff`.
pub fn mergesort_par<T>(ctx: &WorkerCtx<'_>, data: Arc<Vec<T>>, cutoff: usize) -> Vec<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    fn sort_range<T>(
        ctx: &WorkerCtx<'_>,
        data: &Arc<Vec<T>>,
        lo: usize,
        hi: usize,
        cutoff: usize,
    ) -> Vec<T>
    where
        T: Ord + Clone + Send + Sync + 'static,
    {
        if hi - lo <= cutoff {
            return mergesort_seq(&data[lo..hi]);
        }
        let mid = lo + (hi - lo) / 2;
        let left_data = Arc::clone(data);
        let left = ctx.spawn(move |ctx| sort_range(ctx, &left_data, lo, mid, cutoff));
        let right = sort_range(ctx, data, mid, hi, cutoff);
        merge(&left.join(ctx), &right)
    }
    let n = data.len();
    sort_range(ctx, &data, 0, n, cutoff.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
    use sagrid_runtime::{Runtime, RuntimeConfig};

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::seeded(seed);
        (0..n).map(|_| rng.gen_range(1_000_000)).collect()
    }

    #[test]
    fn sorts_empty_and_singleton() {
        assert_eq!(mergesort_seq::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(mergesort_seq(&[7u64]), vec![7]);
    }

    #[test]
    fn sequential_sorts_correctly() {
        let v = random_vec(1000, 1);
        let mut expected = v.clone();
        expected.sort_unstable();
        assert_eq!(mergesort_seq(&v), expected);
    }

    #[test]
    fn handles_duplicates_and_sorted_input() {
        let v = vec![3u64, 3, 3, 1, 1, 2];
        assert_eq!(mergesort_seq(&v), vec![1, 1, 2, 3, 3, 3]);
        let sorted: Vec<u64> = (0..100).collect();
        assert_eq!(mergesort_seq(&sorted), sorted);
        let rev: Vec<u64> = (0..100).rev().collect();
        assert_eq!(mergesort_seq(&rev), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for seed in 0..3 {
            let v = random_vec(20_000, seed);
            let mut expected = v.clone();
            expected.sort_unstable();
            let shared = Arc::new(v);
            let got = rt.run(move |ctx| mergesort_par(ctx, Arc::clone(&shared), 512));
            assert_eq!(got, expected, "seed {seed}");
        }
        rt.shutdown();
    }

    #[test]
    fn cutoff_one_is_still_correct() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let v = random_vec(200, 9);
        let mut expected = v.clone();
        expected.sort_unstable();
        let shared = Arc::new(v);
        let got = rt.run(move |ctx| mergesort_par(ctx, Arc::clone(&shared), 1));
        assert_eq!(got, expected);
        rt.shutdown();
    }
}
