//! Serializable divide-and-conquer jobs for cross-process work stealing.
//!
//! An in-process task is a closure and cannot cross a process boundary. A
//! [`RemoteJob`] is the wire-friendly alternative: a small, self-contained
//! description of a subcomputation (application + arguments) that any
//! worker process can reconstruct and execute from scratch. Jobs are pure
//! — executing one twice yields the same value — which is what lets the
//! steal plane re-export or re-execute a job whose thief died without
//! corrupting the result (first result wins, duplicates are harmless).
//!
//! [`frontier`] turns one root job into many independent subjobs by
//! expanding the recursion a fixed number of levels; the subjob values sum
//! to exactly the root's value, so the process that exported them can
//! reassemble the final answer with plain addition.

use crate::fib::{fib_par, fib_seq};
use crate::nqueens::{nqueens_par_from, nqueens_seq_from};
use sagrid_runtime::WorkerCtx;

/// A [`RemoteJob`] decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteDecodeError {
    /// The payload ended before the job description did.
    Truncated,
    /// Bytes remained after the job was fully decoded.
    Trailing(usize),
    /// Unknown application tag.
    BadTag(u8),
}

impl std::fmt::Display for RemoteDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteDecodeError::Truncated => write!(f, "truncated remote job"),
            RemoteDecodeError::Trailing(n) => write!(f, "{n} trailing bytes after remote job"),
            RemoteDecodeError::BadTag(t) => write!(f, "unknown remote job tag {t:#04x}"),
        }
    }
}

impl std::error::Error for RemoteDecodeError {}

const TAG_FIB: u8 = 0x01;
const TAG_NQUEENS: u8 = 0x02;

/// One process-independent unit of divide-and-conquer work. Every variant
/// computes a `u64` (a sum or a count), so results travel in a single
/// fixed-width wire field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteJob {
    /// `fib(n)` with a sequential cutoff at `threshold`.
    Fib {
        /// The argument.
        n: u64,
        /// Sequential cutoff for the in-process parallel execution.
        threshold: u64,
    },
    /// Count N-queens solutions reachable from a partial placement.
    NQueens {
        /// Board size.
        n: u32,
        /// Column occupancy of the placed rows.
        cols: u32,
        /// Rising-diagonal occupancy, pre-shifted to the next row.
        d1: u32,
        /// Falling-diagonal occupancy, pre-shifted to the next row.
        d2: u32,
        /// Rows of further in-process spawning before going sequential.
        spawn_depth: u32,
    },
}

impl RemoteJob {
    /// Encodes the job as an opaque steal-plane payload (tag byte plus
    /// fixed-width little-endian fields, same conventions as the control
    /// plane).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match self {
            RemoteJob::Fib { n, threshold } => {
                out.push(TAG_FIB);
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(&threshold.to_le_bytes());
            }
            RemoteJob::NQueens {
                n,
                cols,
                d1,
                d2,
                spawn_depth,
            } => {
                out.push(TAG_NQUEENS);
                for v in [n, cols, d1, d2, spawn_depth] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a payload produced by [`RemoteJob::encode`]. The whole
    /// payload must be consumed.
    pub fn decode(buf: &[u8]) -> Result<RemoteJob, RemoteDecodeError> {
        let (&tag, rest) = buf.split_first().ok_or(RemoteDecodeError::Truncated)?;
        let want = match tag {
            TAG_FIB => 16,
            TAG_NQUEENS => 20,
            t => return Err(RemoteDecodeError::BadTag(t)),
        };
        if rest.len() < want {
            return Err(RemoteDecodeError::Truncated);
        }
        if rest.len() > want {
            return Err(RemoteDecodeError::Trailing(rest.len() - want));
        }
        let u64_at = |i: usize| u64::from_le_bytes(rest[i..i + 8].try_into().expect("8 bytes"));
        let u32_at = |i: usize| u32::from_le_bytes(rest[i..i + 4].try_into().expect("4 bytes"));
        Ok(match tag {
            TAG_FIB => RemoteJob::Fib {
                n: u64_at(0),
                threshold: u64_at(8),
            },
            _ => RemoteJob::NQueens {
                n: u32_at(0),
                cols: u32_at(4),
                d1: u32_at(8),
                d2: u32_at(12),
                spawn_depth: u32_at(16),
            },
        })
    }

    /// Executes the job on the local runtime, parallelizing in-process.
    pub fn execute(&self, ctx: &WorkerCtx<'_>) -> u64 {
        match *self {
            RemoteJob::Fib { n, threshold } => fib_par(ctx, n, threshold),
            RemoteJob::NQueens {
                n,
                cols,
                d1,
                d2,
                spawn_depth,
            } => nqueens_par_from(ctx, n, cols, d1, d2, spawn_depth),
        }
    }

    /// Sequential reference execution (ground truth in tests; also the
    /// cheapest path for leaf-sized jobs).
    pub fn execute_seq(&self) -> u64 {
        match *self {
            RemoteJob::Fib { n, .. } => fib_seq(n),
            RemoteJob::NQueens {
                n, cols, d1, d2, ..
            } => nqueens_seq_from(n, cols, d1, d2),
        }
    }

    /// One level of recursion: `Some(children)` whose values sum to this
    /// job's value, or `None` when the job is a leaf that must be kept.
    /// (An empty `Some` is a dead branch contributing 0 — droppable.)
    fn children(&self) -> Option<Vec<RemoteJob>> {
        match *self {
            RemoteJob::Fib { n, threshold } => {
                if n < 2 {
                    return None;
                }
                Some(vec![
                    RemoteJob::Fib {
                        n: n - 1,
                        threshold,
                    },
                    RemoteJob::Fib {
                        n: n - 2,
                        threshold,
                    },
                ])
            }
            RemoteJob::NQueens {
                n,
                cols,
                d1,
                d2,
                spawn_depth,
            } => {
                let full = if n == 0 { 0 } else { (1u32 << n) - 1 };
                if cols == full {
                    return None; // a complete placement: value 1
                }
                let mut free = !(cols | d1 | d2) & full;
                let mut kids = Vec::new();
                while free != 0 {
                    let bit = free & free.wrapping_neg();
                    free ^= bit;
                    kids.push(RemoteJob::NQueens {
                        n,
                        cols: cols | bit,
                        d1: (d1 | bit) << 1,
                        d2: (d2 | bit) >> 1,
                        spawn_depth,
                    });
                }
                Some(kids)
            }
        }
    }
}

/// Expands `root` `depth` levels into independent subjobs. The subjob
/// values sum to exactly `root`'s value, so a victim can export frontier
/// entries to thieves one by one and reassemble the root's answer by
/// adding up the results, in any order, with duplicates tolerated only if
/// each job's value is counted once.
pub fn frontier(root: RemoteJob, depth: u32) -> Vec<RemoteJob> {
    let mut current = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(current.len() * 2);
        let mut expanded = false;
        for job in current.drain(..) {
            match job.children() {
                None => next.push(job), // leaf: keep its value
                Some(kids) => {
                    expanded = true;
                    next.extend(kids); // empty = dead branch, value 0
                }
            }
        }
        current = next;
        if !expanded {
            break; // all leaves: further levels change nothing
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nqueens::nqueens_seq;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn jobs_round_trip_through_the_encoding() {
        let jobs = [
            RemoteJob::Fib {
                n: 36,
                threshold: 12,
            },
            RemoteJob::Fib {
                n: 0,
                threshold: u64::MAX,
            },
            RemoteJob::NQueens {
                n: 12,
                cols: 0b1010,
                d1: 0b100,
                d2: 0b1,
                spawn_depth: 3,
            },
        ];
        for job in jobs {
            let bytes = job.encode();
            assert_eq!(RemoteJob::decode(&bytes), Ok(job));
            // Every strict prefix fails.
            for cut in 0..bytes.len() {
                assert!(RemoteJob::decode(&bytes[..cut]).is_err(), "{job:?}@{cut}");
            }
            // Trailing garbage fails.
            let mut long = bytes.clone();
            long.push(0);
            assert_eq!(
                RemoteJob::decode(&long),
                Err(RemoteDecodeError::Trailing(1))
            );
        }
        assert_eq!(
            RemoteJob::decode(&[0x7f]),
            Err(RemoteDecodeError::BadTag(0x7f))
        );
        assert_eq!(RemoteJob::decode(&[]), Err(RemoteDecodeError::Truncated));
    }

    #[test]
    fn fib_frontier_values_sum_to_the_root() {
        let root = RemoteJob::Fib {
            n: 20,
            threshold: 8,
        };
        for depth in [0u32, 1, 3, 7] {
            let jobs = frontier(root, depth);
            let sum: u64 = jobs.iter().map(|j| j.execute_seq()).sum();
            assert_eq!(sum, fib_seq(20), "depth {depth} ({} jobs)", jobs.len());
        }
        // Depth 7 really fans out.
        assert!(frontier(root, 7).len() > 20);
    }

    #[test]
    fn nqueens_frontier_values_sum_to_the_root() {
        let root = RemoteJob::NQueens {
            n: 8,
            cols: 0,
            d1: 0,
            d2: 0,
            spawn_depth: 2,
        };
        for depth in [0u32, 1, 2, 4] {
            let jobs = frontier(root, depth);
            let sum: u64 = jobs.iter().map(|j| j.execute_seq()).sum();
            assert_eq!(sum, nqueens_seq(8), "depth {depth}");
        }
    }

    #[test]
    fn frontier_of_a_leaf_is_the_leaf() {
        let leaf = RemoteJob::Fib { n: 1, threshold: 0 };
        assert_eq!(frontier(leaf, 10), vec![leaf]);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        for job in [
            RemoteJob::Fib {
                n: 18,
                threshold: 8,
            },
            RemoteJob::NQueens {
                n: 7,
                cols: 0,
                d1: 0,
                d2: 0,
                spawn_depth: 2,
            },
        ] {
            assert_eq!(rt.run(move |ctx| job.execute(ctx)), job.execute_seq());
        }
        rt.shutdown();
    }
}
