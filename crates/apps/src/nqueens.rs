//! N-queens — irregular combinatorial search.
//!
//! Satin's flagship irregular application class: subtree sizes differ by
//! orders of magnitude depending on how early the partial placement runs
//! into conflicts, exactly the "task sizes vary by many orders of
//! magnitude" property the paper's benchmarking section calls out.

use sagrid_runtime::WorkerCtx;

/// Counts solutions to the N-queens problem, sequentially.
pub fn nqueens_seq(n: u32) -> u64 {
    if n == 0 {
        return 1; // the empty placement
    }
    nqueens_seq_from(n, 0, 0, 0)
}

/// Counts solutions reachable from a partial placement, sequentially.
///
/// `cols`, `d1`, `d2` are the column / rising-diagonal / falling-diagonal
/// occupancy bitmasks of the rows placed so far, with the diagonal masks
/// already shifted to the next row — the state the cross-process steal
/// plane ships in a `sagrid_apps::remote` job.
pub fn nqueens_seq_from(n: u32, cols: u32, d1: u32, d2: u32) -> u64 {
    if cols == (1 << n) - 1 {
        return 1;
    }
    let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
    let mut count = 0;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        count += nqueens_seq_from(n, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
    }
    count
}

/// Parallel N-queens: spawn a job per feasible queen position until
/// `spawn_depth` rows are placed, then continue sequentially.
pub fn nqueens_par(ctx: &WorkerCtx<'_>, n: u32, spawn_depth: u32) -> u64 {
    if n == 0 {
        return 1;
    }
    nqueens_par_from(ctx, n, 0, 0, 0, spawn_depth)
}

/// Parallel N-queens from a partial placement (bitmask conventions as in
/// [`nqueens_seq_from`]): `spawn_depth` further rows spawn jobs, the rest
/// runs sequentially.
pub fn nqueens_par_from(
    ctx: &WorkerCtx<'_>,
    n: u32,
    cols: u32,
    d1: u32,
    d2: u32,
    spawn_depth: u32,
) -> u64 {
    if cols == (1 << n) - 1 {
        return 1;
    }
    if spawn_depth == 0 {
        return nqueens_seq_from(n, cols, d1, d2);
    }
    let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
    let mut handles = Vec::new();
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        let (nc, nd1, nd2) = (cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
        handles.push(ctx.spawn(move |ctx| nqueens_par_from(ctx, n, nc, nd1, nd2, spawn_depth - 1)));
    }
    handles.into_iter().map(|h| h.join(ctx)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    /// Known solution counts for N = 0..=10.
    const KNOWN: [u64; 11] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724];

    #[test]
    fn sequential_matches_known_counts() {
        for (n, &expected) in KNOWN.iter().enumerate() {
            assert_eq!(nqueens_seq(n as u32), expected, "n={n}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for n in [6u32, 8, 9] {
            let expected = nqueens_seq(n);
            assert_eq!(rt.run(move |ctx| nqueens_par(ctx, n, 2)), expected, "n={n}");
        }
        rt.shutdown();
    }

    #[test]
    fn spawn_depth_zero_degenerates_to_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        assert_eq!(rt.run(|ctx| nqueens_par(ctx, 8, 0)), 92);
        rt.shutdown();
    }

    #[test]
    fn deep_spawning_still_correct() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        assert_eq!(rt.run(|ctx| nqueens_par(ctx, 8, 8)), 92);
        rt.shutdown();
    }
}
