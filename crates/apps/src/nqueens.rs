//! N-queens — irregular combinatorial search.
//!
//! Satin's flagship irregular application class: subtree sizes differ by
//! orders of magnitude depending on how early the partial placement runs
//! into conflicts, exactly the "task sizes vary by many orders of
//! magnitude" property the paper's benchmarking section calls out.

use sagrid_runtime::WorkerCtx;

/// Counts solutions to the N-queens problem, sequentially.
///
/// `cols`, `diag1`, `diag2` are occupancy bitmasks for the partial
/// placement of the first `row` rows.
pub fn nqueens_seq(n: u32) -> u64 {
    fn go(n: u32, cols: u32, d1: u32, d2: u32) -> u64 {
        if cols == (1 << n) - 1 {
            return 1;
        }
        let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
        let mut count = 0;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            count += go(n, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
        }
        count
    }
    if n == 0 {
        return 1; // the empty placement
    }
    go(n, 0, 0, 0)
}

/// Parallel N-queens: spawn a job per feasible queen position until
/// `spawn_depth` rows are placed, then continue sequentially.
pub fn nqueens_par(ctx: &WorkerCtx<'_>, n: u32, spawn_depth: u32) -> u64 {
    fn seq(n: u32, cols: u32, d1: u32, d2: u32) -> u64 {
        if cols == (1 << n) - 1 {
            return 1;
        }
        let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
        let mut count = 0;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            count += seq(n, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
        }
        count
    }

    fn par(
        ctx: &WorkerCtx<'_>,
        n: u32,
        cols: u32,
        d1: u32,
        d2: u32,
        depth: u32,
        spawn_depth: u32,
    ) -> u64 {
        if cols == (1 << n) - 1 {
            return 1;
        }
        if depth >= spawn_depth {
            return seq(n, cols, d1, d2);
        }
        let mut free = !(cols | d1 | d2) & ((1 << n) - 1);
        let mut handles = Vec::new();
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            let (nc, nd1, nd2) = (cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
            handles.push(ctx.spawn(move |ctx| par(ctx, n, nc, nd1, nd2, depth + 1, spawn_depth)));
        }
        handles.into_iter().map(|h| h.join(ctx)).sum()
    }

    if n == 0 {
        return 1;
    }
    par(ctx, n, 0, 0, 0, 0, spawn_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    /// Known solution counts for N = 0..=10.
    const KNOWN: [u64; 11] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724];

    #[test]
    fn sequential_matches_known_counts() {
        for (n, &expected) in KNOWN.iter().enumerate() {
            assert_eq!(nqueens_seq(n as u32), expected, "n={n}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for n in [6u32, 8, 9] {
            let expected = nqueens_seq(n);
            assert_eq!(rt.run(move |ctx| nqueens_par(ctx, n, 2)), expected, "n={n}");
        }
        rt.shutdown();
    }

    #[test]
    fn spawn_depth_zero_degenerates_to_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        assert_eq!(rt.run(|ctx| nqueens_par(ctx, 8, 0)), 92);
        rt.shutdown();
    }

    #[test]
    fn deep_spawning_still_correct() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        assert_eq!(rt.run(|ctx| nqueens_par(ctx, 8, 8)), 92);
        rt.shutdown();
    }
}
