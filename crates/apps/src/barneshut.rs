//! Barnes-Hut N-body simulation — the paper's evaluation workload.
//!
//! Simulates "the evolution of a large set of bodies under influence of
//! gravitational forces … in iterations of discrete time steps" (paper §5).
//! Each iteration rebuilds an octree over the bodies, computes accelerations
//! with the θ-criterion approximation, and advances the system with a
//! leapfrog integrator. The force phase is parallelized divide-and-conquer
//! over the body set, which is exactly how Satin's Barnes-Hut splits work.
//!
//! The octree is a flat arena (no per-node boxing) and the body set for a
//! test galaxy comes from the Plummer model, the standard initial condition
//! for N-body benchmarks.

#![allow(clippy::needless_range_loop)] // 3-vector loops index several arrays in lockstep

use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_runtime::WorkerCtx;
use std::sync::Arc;

/// Gravitational constant in simulation units.
const G: f64 = 1.0;
/// Softening length: avoids force singularities for close encounters.
const SOFTENING: f64 = 1e-3;

/// A point mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass (> 0).
    pub mass: f64,
}

/// One octree node in the flat arena.
#[derive(Clone, Copy, Debug)]
struct OctNode {
    /// Geometric centre of the cube.
    center: [f64; 3],
    /// Half the cube's edge length.
    half: f64,
    /// Total mass below this node.
    mass: f64,
    /// Centre of mass below this node.
    com: [f64; 3],
    /// Index of the first child slot; children occupy 8 contiguous slots.
    /// `u32::MAX` marks a leaf.
    children: u32,
    /// For leaves: the single body index, or `u32::MAX` when empty.
    body: u32,
}

const NONE: u32 = u32::MAX;

/// The Barnes-Hut simulation state.
pub struct BarnesHut {
    bodies: Vec<Body>,
    theta: f64,
    dt: f64,
    nodes: Vec<OctNode>,
}

impl BarnesHut {
    /// Creates a simulation over `bodies` with opening angle `theta`
    /// (typically 0.3–1.0; smaller = more accurate) and time step `dt`.
    pub fn new(bodies: Vec<Body>, theta: f64, dt: f64) -> Self {
        assert!(!bodies.is_empty(), "need at least one body");
        assert!(theta > 0.0 && dt > 0.0);
        assert!(
            bodies.iter().all(|b| b.mass > 0.0),
            "masses must be positive"
        );
        Self {
            bodies,
            theta,
            dt,
            nodes: Vec::new(),
        }
    }

    /// A Plummer-model galaxy of `n` bodies (total mass 1, virial-ish
    /// velocities), deterministic in `seed`.
    pub fn plummer(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let mut bodies = Vec::with_capacity(n);
        let mass = 1.0 / n as f64;
        for _ in 0..n {
            // Radius from the Plummer cumulative mass profile.
            let x = rng.gen_f64().clamp(1e-9, 0.999);
            let r = (x.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            let (u, v) = (rng.gen_f64(), rng.gen_f64());
            let costheta = 2.0 * u - 1.0;
            let sintheta = (1.0 - costheta * costheta).sqrt();
            let phi = 2.0 * std::f64::consts::PI * v;
            let pos = [
                r * sintheta * phi.cos(),
                r * sintheta * phi.sin(),
                r * costheta,
            ];
            // Velocity: circular-speed-scaled isotropic direction (a
            // simplified Aarseth rejection step).
            let vesc = std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
            let speed = vesc * 0.5 * rng.gen_f64();
            let (u2, v2) = (rng.gen_f64(), rng.gen_f64());
            let ct = 2.0 * u2 - 1.0;
            let st = (1.0 - ct * ct).sqrt();
            let ph = 2.0 * std::f64::consts::PI * v2;
            let vel = [speed * st * ph.cos(), speed * st * ph.sin(), speed * ct];
            bodies.push(Body { pos, vel, mass });
        }
        Self::new(bodies, 0.5, 1e-3)
    }

    /// The bodies (for inspection and tests).
    pub fn bodies(&self) -> &[Body] {
        &self.bodies
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the system is empty (never true: `new` requires ≥ 1 body).
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    // ------------------------------------------------------------------
    // Octree construction (the iteration's sequential phase)
    // ------------------------------------------------------------------

    fn build_tree(&mut self) {
        self.nodes.clear();
        // Bounding cube.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in &self.bodies {
            for d in 0..3 {
                lo[d] = lo[d].min(b.pos[d]);
                hi[d] = hi[d].max(b.pos[d]);
            }
        }
        let center = [
            0.5 * (lo[0] + hi[0]),
            0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2]),
        ];
        let half = (0..3)
            .map(|d| hi[d] - lo[d])
            .fold(0.0_f64, f64::max)
            .max(1e-12)
            * 0.5
            + 1e-12;
        self.nodes.push(OctNode {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: NONE,
            body: NONE,
        });
        for i in 0..self.bodies.len() {
            self.insert(0, i as u32, 0);
        }
        self.summarize(0);
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        let mut o = 0;
        for d in 0..3 {
            if p[d] >= center[d] {
                o |= 1 << d;
            }
        }
        o
    }

    fn child_center(center: &[f64; 3], half: f64, o: usize) -> [f64; 3] {
        let q = half * 0.5;
        [
            center[0] + if o & 1 != 0 { q } else { -q },
            center[1] + if o & 2 != 0 { q } else { -q },
            center[2] + if o & 4 != 0 { q } else { -q },
        ]
    }

    fn insert(&mut self, node: usize, body: u32, depth: u32) {
        // Depth cap: coincident bodies would otherwise split forever; at
        // the cap we aggregate them into the same leaf's mass summary.
        const MAX_DEPTH: u32 = 64;
        let (children, existing) = {
            let n = &self.nodes[node];
            (n.children, n.body)
        };
        if children == NONE {
            if existing == NONE {
                self.nodes[node].body = body;
                return;
            }
            if depth >= MAX_DEPTH {
                // Aggregate: account the body directly into this node's
                // summary at summarize-time by re-linking it nowhere. We
                // fold its mass into `com/mass` immediately instead.
                let b = self.bodies[body as usize];
                let n = &mut self.nodes[node];
                n.mass += b.mass; // summarize() adds the rest
                for d in 0..3 {
                    n.com[d] += b.mass * b.pos[d];
                }
                return;
            }
            // Split: push 8 children, reinsert the existing body.
            let first = self.nodes.len() as u32;
            let (center, half) = (self.nodes[node].center, self.nodes[node].half);
            for o in 0..8 {
                self.nodes.push(OctNode {
                    center: Self::child_center(&center, half, o),
                    half: half * 0.5,
                    mass: 0.0,
                    com: [0.0; 3],
                    children: NONE,
                    body: NONE,
                });
            }
            self.nodes[node].children = first;
            self.nodes[node].body = NONE;
            let pos = self.bodies[existing as usize].pos;
            let o = Self::octant(&self.nodes[node].center, &pos);
            self.insert(first as usize + o, existing, depth + 1);
            let pos = self.bodies[body as usize].pos;
            let o = Self::octant(&self.nodes[node].center, &pos);
            self.insert(first as usize + o, body, depth + 1);
        } else {
            let pos = self.bodies[body as usize].pos;
            let o = Self::octant(&self.nodes[node].center, &pos);
            self.insert(children as usize + o, body, depth + 1);
        }
    }

    /// Bottom-up mass / centre-of-mass summary.
    fn summarize(&mut self, node: usize) {
        let children = self.nodes[node].children;
        if children == NONE {
            let body = self.nodes[node].body;
            if body != NONE {
                let b = self.bodies[body as usize];
                let n = &mut self.nodes[node];
                n.mass += b.mass;
                for d in 0..3 {
                    n.com[d] += b.mass * b.pos[d];
                }
            }
            let n = &mut self.nodes[node];
            if n.mass > 0.0 {
                for d in 0..3 {
                    n.com[d] /= n.mass;
                }
            }
            return;
        }
        let mut mass = self.nodes[node].mass; // depth-capped aggregates
        let mut com = self.nodes[node].com;
        for o in 0..8 {
            let c = children as usize + o;
            self.summarize(c);
            let cn = self.nodes[c];
            mass += cn.mass;
            for d in 0..3 {
                com[d] += cn.mass * cn.com[d];
            }
        }
        let n = &mut self.nodes[node];
        n.mass = mass;
        if mass > 0.0 {
            for d in 0..3 {
                n.com[d] = com[d] / mass;
            }
        }
    }

    // ------------------------------------------------------------------
    // Force evaluation
    // ------------------------------------------------------------------

    fn accel_on(&self, body: usize) -> [f64; 3] {
        let p = self.bodies[body].pos;
        let mut acc = [0.0; 3];
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let n = &self.nodes[ni];
            if n.mass <= 0.0 {
                continue;
            }
            let dx = [n.com[0] - p[0], n.com[1] - p[1], n.com[2] - p[2]];
            let dist2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let leaf = n.children == NONE;
            // θ criterion: treat the cell as a point mass when its angular
            // size (edge / distance) is below θ.
            let use_cell =
                leaf || (2.0 * n.half) * (2.0 * n.half) < self.theta * self.theta * dist2;
            if use_cell {
                if leaf && n.body as usize == body && dist2 < 1e-24 {
                    continue; // self-interaction
                }
                let r2 = dist2 + SOFTENING * SOFTENING;
                let inv_r = r2.sqrt().recip();
                let f = G * n.mass * inv_r * inv_r * inv_r;
                for d in 0..3 {
                    acc[d] += f * dx[d];
                }
            } else {
                for o in 0..8 {
                    stack.push(n.children as usize + o);
                }
            }
        }
        acc
    }

    fn accels_range(&self, lo: usize, hi: usize, out: &mut [[f64; 3]]) {
        for (slot, i) in (lo..hi).enumerate() {
            out[slot] = self.accel_on(i);
        }
    }

    /// One sequential simulation step. Returns the accelerations used (for
    /// cross-checking the parallel version).
    pub fn step_seq(&mut self) -> Vec<[f64; 3]> {
        self.build_tree();
        let mut acc = vec![[0.0; 3]; self.bodies.len()];
        self.accels_range(0, self.bodies.len(), &mut acc);
        self.kick_drift(&acc);
        acc
    }

    /// One parallel simulation step on the divide-and-conquer runtime:
    /// sequential octree build (the per-iteration serial phase the paper's
    /// workload model accounts for), then a parallel force phase splitting
    /// the body range down to `chunk` bodies per task.
    ///
    /// `sim` is consumed and returned because the force phase shares the
    /// state read-only across workers.
    pub fn step_par(
        sim: BarnesHut,
        ctx: &WorkerCtx<'_>,
        chunk: usize,
    ) -> (BarnesHut, Vec<[f64; 3]>) {
        assert!(chunk >= 1);
        let mut sim = sim;
        sim.build_tree();
        let shared = Arc::new(sim);
        let n = shared.len();

        fn split(
            ctx: &WorkerCtx<'_>,
            sim: &Arc<BarnesHut>,
            lo: usize,
            hi: usize,
            chunk: usize,
        ) -> Vec<[f64; 3]> {
            if hi - lo <= chunk {
                let mut out = vec![[0.0; 3]; hi - lo];
                sim.accels_range(lo, hi, &mut out);
                return out;
            }
            let mid = lo + (hi - lo) / 2;
            let left_sim = Arc::clone(sim);
            let left = ctx.spawn(move |ctx| split(ctx, &left_sim, lo, mid, chunk));
            let mut right = split(ctx, sim, mid, hi, chunk);
            let mut all = left.join(ctx);
            all.append(&mut right);
            all
        }

        let acc = split(ctx, &shared, 0, n, chunk);
        let mut sim = Arc::try_unwrap(shared).unwrap_or_else(|arc| BarnesHut {
            bodies: arc.bodies.clone(),
            theta: arc.theta,
            dt: arc.dt,
            nodes: arc.nodes.clone(),
        });
        sim.kick_drift(&acc);
        (sim, acc)
    }

    fn kick_drift(&mut self, acc: &[[f64; 3]]) {
        let dt = self.dt;
        for (b, a) in self.bodies.iter_mut().zip(acc) {
            for d in 0..3 {
                b.vel[d] += a[d] * dt;
                b.pos[d] += b.vel[d] * dt;
            }
        }
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Total momentum (conserved exactly by symmetric pairwise forces, and
    /// very nearly by Barnes-Hut).
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for b in &self.bodies {
            for d in 0..3 {
                p[d] += b.mass * b.vel[d];
            }
        }
        p
    }

    /// Total energy (kinetic + exact pairwise potential), O(n²) — for
    /// conservation tests on small systems.
    pub fn total_energy(&self) -> f64 {
        let mut e = 0.0;
        for b in &self.bodies {
            let v2 = b.vel.iter().map(|v| v * v).sum::<f64>();
            e += 0.5 * b.mass * v2;
        }
        for i in 0..self.bodies.len() {
            for j in (i + 1)..self.bodies.len() {
                let (a, b) = (&self.bodies[i], &self.bodies[j]);
                let mut r2 = SOFTENING * SOFTENING;
                for d in 0..3 {
                    let dx = a.pos[d] - b.pos[d];
                    r2 += dx * dx;
                }
                e -= G * a.mass * b.mass / r2.sqrt();
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    fn two_body() -> BarnesHut {
        // Equal masses on a circular orbit around their barycentre.
        // Separation 2, masses 0.5 each ⇒ v = sqrt(G·M_total/4·…)…
        // Circular speed for each: v² = G·m_other·r / (2r)² with r=1:
        // v = sqrt(0.5/4·2)… keep it simple: v chosen so the orbit is
        // bound and symmetric.
        let v = (G * 0.5 / 4.0_f64).sqrt();
        BarnesHut::new(
            vec![
                Body {
                    pos: [1.0, 0.0, 0.0],
                    vel: [0.0, v, 0.0],
                    mass: 0.5,
                },
                Body {
                    pos: [-1.0, 0.0, 0.0],
                    vel: [0.0, -v, 0.0],
                    mass: 0.5,
                },
            ],
            0.1,
            1e-3,
        )
    }

    #[test]
    fn tree_mass_equals_total_mass() {
        let mut sim = BarnesHut::plummer(200, 1);
        sim.build_tree();
        let total: f64 = sim.bodies.iter().map(|b| b.mass).sum();
        assert!((sim.nodes[0].mass - total).abs() < 1e-9);
    }

    #[test]
    fn two_body_attraction_points_inward() {
        let mut sim = two_body();
        sim.build_tree();
        let a0 = sim.accel_on(0);
        let a1 = sim.accel_on(1);
        assert!(a0[0] < 0.0, "body at +x accelerates toward -x: {a0:?}");
        assert!(a1[0] > 0.0, "body at -x accelerates toward +x: {a1:?}");
        // Newton's third law (equal masses).
        assert!((a0[0] + a1[0]).abs() < 1e-9);
    }

    #[test]
    fn momentum_is_conserved_over_steps() {
        let mut sim = BarnesHut::plummer(100, 2);
        let p0 = sim.total_momentum();
        for _ in 0..20 {
            let _ = sim.step_seq();
        }
        let p1 = sim.total_momentum();
        for d in 0..3 {
            assert!(
                (p1[d] - p0[d]).abs() < 5e-3,
                "momentum drift in dim {d}: {p0:?} -> {p1:?}"
            );
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut sim = two_body();
        let e0 = sim.total_energy();
        for _ in 0..200 {
            let _ = sim.step_seq();
        }
        let e1 = sim.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.05,
            "energy drift too large: {e0} -> {e1}"
        );
    }

    #[test]
    fn theta_zero_limit_matches_direct_sum() {
        // With a tiny θ the tree walk opens every cell: compare against a
        // direct O(n²) sum.
        let mut sim = BarnesHut::plummer(50, 3);
        sim.theta = 1e-6;
        sim.build_tree();
        for i in 0..sim.len() {
            let tree_acc = sim.accel_on(i);
            let mut direct = [0.0; 3];
            for j in 0..sim.len() {
                if i == j {
                    continue;
                }
                let (a, b) = (sim.bodies[i], sim.bodies[j]);
                let mut r2 = SOFTENING * SOFTENING;
                let mut dx = [0.0; 3];
                for d in 0..3 {
                    dx[d] = b.pos[d] - a.pos[d];
                    r2 += dx[d] * dx[d];
                }
                let f = G * b.mass / (r2 * r2.sqrt());
                for d in 0..3 {
                    direct[d] += f * dx[d];
                }
            }
            for d in 0..3 {
                assert!(
                    (tree_acc[d] - direct[d]).abs() < 1e-6,
                    "body {i} dim {d}: tree {tree_acc:?} vs direct {direct:?}"
                );
            }
        }
    }

    #[test]
    fn moderate_theta_approximates_direct_sum() {
        let mut sim = BarnesHut::plummer(200, 4);
        sim.theta = 0.5;
        sim.build_tree();
        // Average relative error should be small.
        let mut rel_err_sum = 0.0;
        for i in 0..sim.len() {
            let tree_acc = sim.accel_on(i);
            let mut direct = [0.0; 3];
            for j in 0..sim.len() {
                if i == j {
                    continue;
                }
                let (a, b) = (sim.bodies[i], sim.bodies[j]);
                let mut r2 = SOFTENING * SOFTENING;
                let mut dx = [0.0; 3];
                for d in 0..3 {
                    dx[d] = b.pos[d] - a.pos[d];
                    r2 += dx[d] * dx[d];
                }
                let f = G * b.mass / (r2 * r2.sqrt());
                for d in 0..3 {
                    direct[d] += f * dx[d];
                }
            }
            let mag =
                (direct[0] * direct[0] + direct[1] * direct[1] + direct[2] * direct[2]).sqrt();
            let err = ((tree_acc[0] - direct[0]).powi(2)
                + (tree_acc[1] - direct[1]).powi(2)
                + (tree_acc[2] - direct[2]).powi(2))
            .sqrt();
            rel_err_sum += err / mag.max(1e-12);
        }
        let mean_rel = rel_err_sum / sim.len() as f64;
        assert!(mean_rel < 0.02, "mean relative force error {mean_rel}");
    }

    #[test]
    fn parallel_step_matches_sequential_bitwise() {
        let mut seq = BarnesHut::plummer(300, 5);
        let acc_seq = seq.step_seq();
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        let (par, acc_par) = rt.run(move |ctx| {
            // `run` requires Fn (re-executable); rebuilding the sim per
            // invocation keeps it pure.
            let sim = BarnesHut::plummer(300, 5);
            BarnesHut::step_par(sim, ctx, 16)
        });
        let _ = par;
        assert_eq!(acc_seq.len(), acc_par.len());
        for (i, (a, b)) in acc_seq.iter().zip(&acc_par).enumerate() {
            assert_eq!(a, b, "acceleration of body {i} differs");
        }
        let _ = seq;
        rt.shutdown();
    }

    #[test]
    fn coincident_bodies_do_not_overflow_the_tree() {
        let b = Body {
            pos: [0.5, 0.5, 0.5],
            vel: [0.0; 3],
            mass: 1.0,
        };
        let mut sim = BarnesHut::new(vec![b; 5], 0.5, 1e-3);
        sim.build_tree(); // must terminate despite 5 identical positions
        assert!((sim.nodes[0].mass - 5.0).abs() < 1e-9);
        let _ = sim.step_seq();
    }

    #[test]
    fn plummer_is_deterministic_in_seed() {
        let a = BarnesHut::plummer(64, 7);
        let b = BarnesHut::plummer(64, 7);
        let c = BarnesHut::plummer(64, 8);
        assert_eq!(a.bodies(), b.bodies());
        assert_ne!(a.bodies(), c.bodies());
    }

    #[test]
    #[should_panic(expected = "at least one body")]
    fn empty_system_rejected() {
        let _ = BarnesHut::new(vec![], 0.5, 1e-3);
    }
}
