//! Adaptive quadrature — data-dependent recursion depth.
//!
//! Adaptive Simpson integration splits an interval until the local error
//! estimate is small enough; smooth regions terminate quickly while wiggly
//! regions recurse deeply, yielding the irregular task tree the paper's
//! monitoring machinery has to cope with.

use sagrid_runtime::WorkerCtx;

fn simpson(f: &impl Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    let m = 0.5 * (a + b);
    (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
}

fn adaptive(f: &impl Fn(f64) -> f64, a: f64, b: f64, whole: f64, eps: f64, depth: u32) -> f64 {
    let m = 0.5 * (a + b);
    let left = simpson(f, a, m);
    let right = simpson(f, m, b);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * eps {
        return left + right + delta / 15.0;
    }
    adaptive(f, a, m, left, eps * 0.5, depth - 1) + adaptive(f, m, b, right, eps * 0.5, depth - 1)
}

/// Sequential adaptive Simpson integration of `f` over `[a, b]` with
/// absolute tolerance `eps`.
pub fn integrate_seq(f: impl Fn(f64) -> f64, a: f64, b: f64, eps: f64) -> f64 {
    assert!(b >= a && eps > 0.0);
    let whole = simpson(&f, a, b);
    adaptive(&f, a, b, whole, eps, 50)
}

/// Parallel adaptive Simpson: spawns the left half while computing the
/// right, down to `spawn_depth` levels, then switches to the sequential
/// kernel. `f` must be `Send + Sync + Copy` (a plain function pointer or
/// capture-light closure).
pub fn integrate_par<F>(
    ctx: &WorkerCtx<'_>,
    f: F,
    a: f64,
    b: f64,
    eps: f64,
    spawn_depth: u32,
) -> f64
where
    F: Fn(f64) -> f64 + Send + Sync + Copy + 'static,
{
    fn go<F>(
        ctx: &WorkerCtx<'_>,
        f: F,
        a: f64,
        b: f64,
        whole: f64,
        eps: f64,
        spawn_depth: u32,
    ) -> f64
    where
        F: Fn(f64) -> f64 + Send + Sync + Copy + 'static,
    {
        let m = 0.5 * (a + b);
        let left = simpson(&f, a, m);
        let right = simpson(&f, m, b);
        let delta = left + right - whole;
        if delta.abs() <= 15.0 * eps {
            return left + right + delta / 15.0;
        }
        if spawn_depth == 0 {
            return adaptive(&f, a, m, left, eps * 0.5, 50)
                + adaptive(&f, m, b, right, eps * 0.5, 50);
        }
        let eps2 = eps * 0.5;
        let d = spawn_depth - 1;
        let lh = ctx.spawn(move |ctx| go(ctx, f, a, m, left, eps2, d));
        let r = go(ctx, f, m, b, right, eps2, d);
        lh.join(ctx) + r
    }
    assert!(b >= a && eps > 0.0);
    let whole = simpson(&f, a, b);
    go(ctx, f, a, b, whole, eps, spawn_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let v = integrate_seq(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-9);
        let exact = 4.0 - 4.0 + 2.0; // x^4/4 - x^2 + x over [0,2]
        assert!((v - exact).abs() < 1e-9, "{v} vs {exact}");
    }

    #[test]
    fn integrates_sine_to_tolerance() {
        let v = integrate_seq(f64::sin, 0.0, std::f64::consts::PI, 1e-10);
        assert!((v - 2.0).abs() < 1e-8, "{v}");
    }

    #[test]
    fn handles_oscillatory_integrands() {
        // ∫₀¹ sin²(20x) dx = 1/2 − sin(40)/80 (interval chosen so the
        // oscillation does not alias with the sampler's midpoints).
        let v = integrate_seq(|x| (20.0 * x).sin().powi(2), 0.0, 1.0, 1e-10);
        let exact = 0.5 - (40.0_f64).sin() / 80.0;
        assert!((v - exact).abs() < 1e-7, "{v} vs {exact}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        let seq = integrate_seq(|x| (x.sin() * 10.0).exp().cos(), 0.0, 3.0, 1e-9);
        let par = rt.run(move |ctx| {
            integrate_par(ctx, |x| (x.sin() * 10.0).exp().cos(), 0.0, 3.0, 1e-9, 8)
        });
        assert!(
            (seq - par).abs() < 1e-7,
            "sequential {seq} vs parallel {par}"
        );
        rt.shutdown();
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_tolerance() {
        let _ = integrate_seq(|x| x, 0.0, 1.0, 0.0);
    }
}
