//! # sagrid-apps
//!
//! Divide-and-conquer applications for the `sagrid` runtime — the workload
//! side of the paper. Satin's canonical application set is represented by:
//!
//! * [`fib`] — the classic spawn/sync micro-benchmark (fine-grained,
//!   maximally irregular spawn tree);
//! * [`nqueens`] — combinatorial search with irregular subtree sizes;
//! * [`quadrature`] — adaptive numerical integration (data-dependent
//!   recursion depth);
//! * [`tsp`] — branch-and-bound travelling salesman with a shared global
//!   bound (speculative parallelism and pruning);
//! * [`sort`] — parallel mergesort (large result payloads);
//! * [`matmul`] — divide-and-conquer matrix multiplication (regular
//!   8-way spawn tree);
//! * [`barneshut`] — the paper's evaluation workload: an N-body simulation
//!   with a Plummer-model galaxy, octree construction, θ-criterion force
//!   evaluation, and leapfrog integration, parallelized divide-and-conquer
//!   over the body set.
//!
//! Every application offers a sequential reference implementation (used by
//! the tests as ground truth) and a parallel version against
//! [`sagrid_runtime::WorkerCtx`].
//!
//! [`remote`] additionally packages fib and nqueens subcomputations as
//! serializable [`RemoteJob`]s so the process-mode steal plane can ship
//! work between worker processes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod barneshut;
pub mod fib;
pub mod matmul;
pub mod nqueens;
pub mod quadrature;
pub mod remote;
pub mod sort;
pub mod tsp;

pub use barneshut::{BarnesHut, Body};
pub use fib::{fib_par, fib_seq};
pub use matmul::{matmul_par, matmul_seq, Matrix};
pub use nqueens::{nqueens_par, nqueens_par_from, nqueens_seq, nqueens_seq_from};
pub use quadrature::{integrate_par, integrate_seq};
pub use remote::{frontier, RemoteDecodeError, RemoteJob};
pub use sort::{mergesort_par, mergesort_seq};
pub use tsp::{tsp_par, tsp_seq, TspInstance};
