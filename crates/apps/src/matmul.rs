//! Divide-and-conquer matrix multiplication.
//!
//! The cache-oblivious 8-way recursive decomposition: `C = A·B` splits into
//! four quadrant results, each the sum of two quadrant products. The spawn
//! tree is regular (unlike the search codes), which makes it the
//! best-behaved application for work stealing — Satin's papers use it as
//! the "easy" end of the application spectrum.

use sagrid_runtime::WorkerCtx;
use std::sync::Arc;

/// A dense row-major square matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds from a row-major buffer. Panics unless `data.len() == n²`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer must hold n² elements");
        Self { n, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Deterministic pseudo-random matrix with entries in `[-1, 1)`.
    pub fn random(n: usize, seed: u64) -> Self {
        use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seeded(seed);
        Self {
            n,
            data: (0..n * n).map(|_| rng.gen_f64() * 2.0 - 1.0).collect(),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element update.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Frobenius norm of `self − other` (test tolerance metric).
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Naive `O(n³)` reference multiplication.
pub fn matmul_seq(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for k in 0..n {
            let aik = a.get(i, k);
            for j in 0..n {
                c.data[i * n + j] += aik * b.get(k, j);
            }
        }
    }
    c
}

/// A quadrant view: `(row offset, col offset, size)`.
type Quad = (usize, usize, usize);

fn mul_block(a: &Matrix, b: &Matrix, qa: Quad, qb: Quad, size: usize) -> Vec<f64> {
    // Computes the `size × size` product of A[qa] · B[qb] into a dense
    // buffer (row-major).
    let mut out = vec![0.0; size * size];
    for i in 0..size {
        for k in 0..size {
            let aik = a.get(qa.0 + i, qa.1 + k);
            for j in 0..size {
                out[i * size + j] += aik * b.get(qb.0 + k, qb.1 + j);
            }
        }
    }
    out
}

fn add_into(dst: &mut [f64], src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Parallel divide-and-conquer multiplication: quadrants are spawned until
/// `size <= cutoff`. `n` must be a power of two (pad otherwise).
pub fn matmul_par(ctx: &WorkerCtx<'_>, a: Arc<Matrix>, b: Arc<Matrix>, cutoff: usize) -> Matrix {
    assert_eq!(a.n, b.n);
    assert!(a.n.is_power_of_two(), "dimension must be a power of two");
    let n = a.n;

    fn block(
        ctx: &WorkerCtx<'_>,
        a: &Arc<Matrix>,
        b: &Arc<Matrix>,
        qa: Quad,
        qb: Quad,
        size: usize,
        cutoff: usize,
    ) -> Vec<f64> {
        if size <= cutoff {
            return mul_block(a, b, qa, qb, size);
        }
        let h = size / 2;
        // C_ij = A_i0 · B_0j + A_i1 · B_1j  — spawn the 8 sub-products.
        let mut handles = Vec::with_capacity(7);
        let mut specs = Vec::with_capacity(8);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    let sub_a = (qa.0 + i * h, qa.1 + k * h, h);
                    let sub_b = (qb.0 + k * h, qb.1 + j * h, h);
                    specs.push((i, j, sub_a, sub_b));
                }
            }
        }
        // Spawn all but the last; compute the last inline (work-first).
        let last = specs.pop().expect("eight specs");
        for &(_, _, sub_a, sub_b) in &specs {
            let (a2, b2) = (Arc::clone(a), Arc::clone(b));
            handles.push(ctx.spawn(move |ctx| block(ctx, &a2, &b2, sub_a, sub_b, h, cutoff)));
        }
        let mut partials: Vec<Vec<f64>> = Vec::with_capacity(8);
        let last_result = block(ctx, a, b, last.2, last.3, h, cutoff);
        for h2 in handles {
            partials.push(h2.join(ctx));
        }
        partials.push(last_result);
        // Assemble: specs order is (i, j, k = 0..2) row-major; partial p
        // for (i, j, k) contributes additively to quadrant (i, j).
        let mut quads = vec![vec![0.0; h * h]; 4];
        for (idx, &(i, j, _, _)) in specs.iter().enumerate() {
            add_into(&mut quads[i * 2 + j], &partials[idx]);
        }
        add_into(&mut quads[last.0 * 2 + last.1], &partials[specs.len()]);
        // Stitch the four quadrants into one buffer.
        let mut out = vec![0.0; size * size];
        for i in 0..2 {
            for j in 0..2 {
                let q = &quads[i * 2 + j];
                for r in 0..h {
                    let dst = (i * h + r) * size + j * h;
                    out[dst..dst + h].copy_from_slice(&q[r * h..(r + 1) * h]);
                }
            }
        }
        out
    }

    let data = block(ctx, &a, &b, (0, 0, n), (0, 0, n), n, cutoff.max(1));
    Matrix { n, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(8, 1);
        let i = Matrix::identity(8);
        let c = matmul_seq(&a, &i);
        assert!(c.frobenius_distance(&a) < 1e-12);
        let c = matmul_seq(&i, &a);
        assert!(c.frobenius_distance(&a) < 1e-12);
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul_seq(&a, &b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for seed in 0..2 {
            let a = Arc::new(Matrix::random(64, seed));
            let b = Arc::new(Matrix::random(64, seed + 100));
            let expected = matmul_seq(&a, &b);
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let got = rt.run(move |ctx| matmul_par(ctx, Arc::clone(&a2), Arc::clone(&b2), 16));
            assert!(
                got.frobenius_distance(&expected) < 1e-9,
                "seed {seed}: distance {}",
                got.frobenius_distance(&expected)
            );
        }
        rt.shutdown();
    }

    #[test]
    fn cutoff_equal_to_n_degenerates_to_sequential() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(2));
        let a = Arc::new(Matrix::random(16, 3));
        let b = Arc::new(Matrix::random(16, 4));
        let expected = matmul_seq(&a, &b);
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let got = rt.run(move |ctx| matmul_par(ctx, Arc::clone(&a2), Arc::clone(&b2), 16));
        assert!(got.frobenius_distance(&expected) < 1e-9);
        rt.shutdown();
    }

    #[test]
    fn panic_from_invalid_dimension_propagates() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(1));
        let a = Arc::new(Matrix::random(6, 1));
        let b = Arc::new(Matrix::random(6, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(move |ctx| matmul_par(ctx, Arc::clone(&a), Arc::clone(&b), 2))
        }));
        assert!(
            result.is_err(),
            "non-power-of-two dimension must propagate a panic"
        );
        rt.shutdown();
    }
}
