//! Travelling salesman by branch-and-bound — speculative search with a
//! shared pruning bound.
//!
//! The paper notes that performance-degradation detection based on
//! iteration counts "cannot be used for irregular computations such as
//! search and optimization problems" — this is that application class.
//! Parallel branches share the best-tour-so-far through an atomic, so work
//! pruning is speculative and the amount of real work is schedule-
//! dependent, while the *result* stays exact.

use sagrid_runtime::WorkerCtx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A symmetric TSP instance (full distance matrix, integer weights).
#[derive(Clone, Debug)]
pub struct TspInstance {
    n: usize,
    dist: Vec<u64>,
}

impl TspInstance {
    /// Builds an instance from a full `n × n` distance matrix (row-major).
    /// Panics unless the matrix is square, symmetric and zero-diagonal.
    pub fn new(n: usize, dist: Vec<u64>) -> Self {
        assert!(n >= 2, "need at least two cities");
        assert_eq!(dist.len(), n * n, "matrix must be n×n");
        for i in 0..n {
            assert_eq!(dist[i * n + i], 0, "diagonal must be zero");
            for j in 0..n {
                assert_eq!(dist[i * n + j], dist[j * n + i], "matrix must be symmetric");
            }
        }
        Self { n, dist }
    }

    /// Random Euclidean instance on an integer grid (deterministic in
    /// `seed`), the standard random testbed for branch-and-bound.
    pub fn random_euclidean(n: usize, seed: u64) -> Self {
        use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seeded(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_f64() * 1000.0, rng.gen_f64() * 1000.0))
            .collect();
        let mut dist = vec![0u64; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u64;
            }
        }
        Self { n, dist }
    }

    /// Number of cities.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn d(&self, i: usize, j: usize) -> u64 {
        self.dist[i * self.n + j]
    }

    /// Length of the greedy nearest-neighbour tour from city 0 — the
    /// initial upper bound.
    pub fn greedy_bound(&self) -> u64 {
        let mut visited = vec![false; self.n];
        visited[0] = true;
        let mut at = 0;
        let mut total = 0;
        for _ in 1..self.n {
            let next = (0..self.n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| self.d(at, j))
                .expect("unvisited city exists");
            total += self.d(at, next);
            visited[next] = true;
            at = next;
        }
        total + self.d(at, 0)
    }
}

fn branch_seq(
    inst: &TspInstance,
    path: &mut Vec<usize>,
    visited: &mut [bool],
    len: u64,
    best: &AtomicU64,
) {
    let n = inst.n;
    if path.len() == n {
        let total = len + inst.d(*path.last().expect("non-empty"), 0);
        best.fetch_min(total, Ordering::Relaxed);
        return;
    }
    let at = *path.last().expect("non-empty");
    for next in 1..n {
        if visited[next] {
            continue;
        }
        let new_len = len + inst.d(at, next);
        if new_len >= best.load(Ordering::Relaxed) {
            continue; // prune
        }
        visited[next] = true;
        path.push(next);
        branch_seq(inst, path, visited, new_len, best);
        path.pop();
        visited[next] = false;
    }
}

/// Exact sequential branch-and-bound tour length (tours start/end at city
/// 0).
pub fn tsp_seq(inst: &TspInstance) -> u64 {
    let best = AtomicU64::new(inst.greedy_bound());
    let mut path = vec![0];
    let mut visited = vec![false; inst.n];
    visited[0] = true;
    branch_seq(inst, &mut path, &mut visited, 0, &best);
    best.into_inner()
}

/// Exact parallel branch-and-bound: the first `spawn_depth` tree levels
/// spawn one job per next city; deeper levels run the sequential kernel.
/// All branches share one atomic best-tour bound.
pub fn tsp_par(ctx: &WorkerCtx<'_>, inst: &Arc<TspInstance>, spawn_depth: usize) -> u64 {
    fn go(
        ctx: &WorkerCtx<'_>,
        inst: &Arc<TspInstance>,
        path: Vec<usize>,
        len: u64,
        best: &Arc<AtomicU64>,
        spawn_depth: usize,
    ) {
        let n = inst.n();
        if path.len() == n {
            let total = len + inst.d(*path.last().expect("non-empty"), 0);
            best.fetch_min(total, Ordering::Relaxed);
            return;
        }
        if path.len() > spawn_depth {
            let mut visited = vec![false; n];
            for &c in &path {
                visited[c] = true;
            }
            let mut p = path;
            branch_seq(inst, &mut p, &mut visited, len, best);
            return;
        }
        let at = *path.last().expect("non-empty");
        let mut handles = Vec::new();
        for next in 1..n {
            if path.contains(&next) {
                continue;
            }
            let new_len = len + inst.d(at, next);
            if new_len >= best.load(Ordering::Relaxed) {
                continue;
            }
            let mut new_path = path.clone();
            new_path.push(next);
            let inst = Arc::clone(inst);
            let best = Arc::clone(best);
            handles.push(ctx.spawn(move |ctx| {
                go(ctx, &inst, new_path.clone(), new_len, &best, spawn_depth);
            }));
        }
        for h in handles {
            h.join(ctx);
        }
    }

    let best = Arc::new(AtomicU64::new(inst.greedy_bound()));
    go(ctx, inst, vec![0], 0, &best, spawn_depth);
    best.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_runtime::{Runtime, RuntimeConfig};

    fn square_instance() -> TspInstance {
        // Four cities on a unit square (scaled ×10): optimal tour = 40.
        TspInstance::new(
            4,
            vec![
                0, 10, 14, 10, //
                10, 0, 10, 14, //
                14, 10, 0, 10, //
                10, 14, 10, 0,
            ],
        )
    }

    #[test]
    fn solves_the_unit_square() {
        assert_eq!(tsp_seq(&square_instance()), 40);
    }

    #[test]
    fn greedy_bound_is_a_valid_upper_bound() {
        for seed in 0..5 {
            let inst = TspInstance::random_euclidean(8, seed);
            assert!(inst.greedy_bound() >= tsp_seq(&inst));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_instances() {
        let rt = Runtime::new(RuntimeConfig::single_cluster(4));
        for seed in 0..4 {
            let inst = Arc::new(TspInstance::random_euclidean(9, seed));
            let expected = tsp_seq(&inst);
            let inst2 = Arc::clone(&inst);
            let got = rt.run(move |ctx| tsp_par(ctx, &inst2, 2));
            assert_eq!(got, expected, "seed {seed}");
        }
        rt.shutdown();
    }

    #[test]
    fn brute_force_cross_check_small() {
        // Exhaustive check on 7 cities against naive permutation search.
        let inst = TspInstance::random_euclidean(7, 99);
        let n = inst.n();
        let mut perm: Vec<usize> = (1..n).collect();
        let mut best = u64::MAX;
        // Heap's algorithm over the (n-1)! permutations.
        fn heaps(perm: &mut Vec<usize>, k: usize, inst: &TspInstance, best: &mut u64) {
            if k == 1 {
                let mut len = inst.d(0, perm[0]);
                for w in perm.windows(2) {
                    len += inst.d(w[0], w[1]);
                }
                len += inst.d(*perm.last().expect("non-empty"), 0);
                *best = (*best).min(len);
                return;
            }
            for i in 0..k {
                heaps(perm, k - 1, inst, best);
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(0, k - 1);
                }
            }
        }
        let k = perm.len();
        heaps(&mut perm, k, &inst, &mut best);
        assert_eq!(tsp_seq(&inst), best);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_matrices() {
        let _ = TspInstance::new(2, vec![0, 1, 2, 0]);
    }
}
