//! Edge cases of [`InjectionSchedule`] driven through a real [`EventQueue`]
//! the way the simulation engine drives it: one wake-up event per distinct
//! injection time, `pop_due(now)` at each wake-up.
//!
//! Covers injections at t = 0, multiple injections sharing a timestamp
//! (deterministic submission order), and the interaction with the kernel's
//! past-time clamp — all on both queue backends.

use sagrid_core::ids::ClusterId;
use sagrid_core::time::SimTime;
use sagrid_simnet::{EventQueue, Injection, InjectionSchedule, QueueBackend, ScheduledInjection};
use std::collections::BTreeSet;

fn load(cluster: u16, factor: f64) -> Injection {
    Injection::CpuLoad {
        cluster: ClusterId(cluster),
        count: None,
        factor,
    }
}

fn sched(entries: Vec<(u64, Injection)>) -> InjectionSchedule {
    InjectionSchedule::new(
        entries
            .into_iter()
            .map(|(secs, injection)| ScheduledInjection {
                at: SimTime::from_secs(secs),
                injection,
            })
            .collect(),
    )
}

/// Replays a schedule through an event queue exactly like
/// `GridSim::start()` + the event loop: one wake-up per distinct time
/// (deduplicated through a `BTreeSet`), `pop_due` at each pop.
fn replay(backend: QueueBackend, mut s: InjectionSchedule) -> Vec<(SimTime, Injection)> {
    let mut q: EventQueue<()> = EventQueue::with_backend(backend);
    let times: BTreeSet<SimTime> = s.upcoming_times().collect();
    for t in times {
        q.push(t, ());
    }
    let mut fired = Vec::new();
    while let Some((now, ())) = q.pop() {
        for e in s.pop_due(now) {
            fired.push((e.at, e.injection));
        }
    }
    assert_eq!(s.remaining(), 0, "every injection fired");
    fired
}

#[test]
fn injection_at_t_zero_fires_on_the_first_wakeup_on_both_backends() {
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        let s = sched(vec![(0, load(0, 2.0)), (5, load(1, 3.0))]);
        let fired = replay(backend, s);
        assert_eq!(
            fired,
            vec![
                (SimTime::ZERO, load(0, 2.0)),
                (SimTime::from_secs(5), load(1, 3.0)),
            ],
            "{backend:?}"
        );
    }
}

#[test]
fn same_timestamp_injections_fire_once_in_submission_order_on_both_backends() {
    // Three perturbations share t = 7 s (submitted out of cluster order so
    // ordering-by-cluster would be caught) around two other times; the
    // engine deduplicates wake-ups, so the shared time gets ONE queue event
    // that must surface all three, in submission order.
    let entries = vec![
        (7, load(2, 4.0)),
        (1, load(0, 2.0)),
        (7, load(0, 5.0)),
        (
            7,
            Injection::CrashCluster {
                cluster: ClusterId(1),
            },
        ),
        (9, load(1, 1.0)),
    ];
    let mut expected = entries.clone();
    expected.sort_by_key(|&(secs, _)| secs); // stable: ties keep submission order
    let expected: Vec<(SimTime, Injection)> = expected
        .into_iter()
        .map(|(secs, i)| (SimTime::from_secs(secs), i))
        .collect();

    let runs: Vec<_> = [QueueBackend::Heap, QueueBackend::Wheel]
        .into_iter()
        .map(|b| replay(b, sched(entries.clone())))
        .collect();
    assert_eq!(runs[0], expected);
    assert_eq!(runs[0], runs[1], "backends must agree pop-for-pop");
}

#[test]
fn late_wakeup_drains_every_due_injection_exactly_once_on_both_backends() {
    // The clamp contract: a wake-up scheduled for a time the clock already
    // passed runs at `now()` (kernel clamps in release, asserts in debug —
    // so this test applies the documented `max(now)` clamp itself). One
    // late wake-up must drain EVERY injection due by then, in order, and a
    // later on-time wake-up must not re-deliver any of them.
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        let mut q: EventQueue<&str> = EventQueue::with_backend(backend);
        let mut s = sched(vec![
            (2, load(0, 2.0)),
            (4, load(1, 3.0)),
            (30, load(2, 4.0)),
        ]);

        // The clock jumps straight to 10 s before the injection wake-ups
        // get scheduled (e.g. a handler that discovered the schedule late).
        q.push(SimTime::from_secs(10), "jump");
        let (now, _) = q.pop().unwrap();
        assert_eq!(now, SimTime::from_secs(10));

        for t in s.upcoming_times().collect::<BTreeSet<SimTime>>() {
            q.push(t.max(q.now()), "inject"); // 2 s and 4 s clamp to 10 s
        }
        let mut fired = Vec::new();
        while let Some((now, tag)) = q.pop() {
            assert_eq!(tag, "inject");
            fired.extend(s.pop_due(now).into_iter().map(|e| (now, e.injection)));
        }
        assert_eq!(
            fired,
            vec![
                // Both overdue injections drain on the FIRST clamped
                // wake-up; the second clamped wake-up finds nothing due.
                (SimTime::from_secs(10), load(0, 2.0)),
                (SimTime::from_secs(10), load(1, 3.0)),
                (SimTime::from_secs(30), load(2, 4.0)),
            ],
            "{backend:?}"
        );
        assert_eq!(s.remaining(), 0);
    }
}

// In release builds the kernel itself clamps past-time pushes (debug builds
// assert instead, see `scheduling_into_the_past_asserts_in_debug`); verify
// the injection replay survives the real clamp path there.
#[test]
#[cfg(not(debug_assertions))]
fn kernel_clamp_delivers_past_wakeups_at_now_on_both_backends() {
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        let mut q: EventQueue<&str> = EventQueue::with_backend(backend);
        let mut s = sched(vec![(2, load(0, 2.0)), (4, load(1, 3.0))]);
        q.push(SimTime::from_secs(10), "jump");
        q.pop();
        for t in s.upcoming_times().collect::<BTreeSet<SimTime>>() {
            q.push(t, "inject"); // genuinely in the past: kernel clamps to 10 s
        }
        let mut fired = Vec::new();
        while let Some((now, _)) = q.pop() {
            assert_eq!(now, SimTime::from_secs(10), "{backend:?}");
            fired.extend(s.pop_due(now).into_iter().map(|e| e.injection));
        }
        assert_eq!(fired, vec![load(0, 2.0), load(1, 3.0)], "{backend:?}");
    }
}
