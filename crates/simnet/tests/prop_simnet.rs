//! Randomized property tests for the discrete-event substrate, driven by
//! the in-repo fixed-seed RNG so every case is reproducible offline.

use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_simnet::{
    EventQueue, Injection, InjectionSchedule, Network, QueueBackend, ScheduledInjection, SharedLink,
};

const CASES: u64 = 150;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0x51E7_0000 + test * 1_000 + case)
}

/// A shared link is FIFO: transmissions enqueued in order clear in order,
/// and total carriage equals the sum of bytes.
#[test]
fn shared_link_is_fifo() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let n = 1 + rng.gen_index(49);
        let sizes: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range(999_999)).collect();
        let mut link = SharedLink::new(SimDuration::from_millis(1), 1_000_000.0);
        let mut last_clear = SimTime::ZERO;
        let mut total = 0u64;
        for (i, &bytes) in sizes.iter().enumerate() {
            let now = SimTime::from_millis(i as u64); // senders arrive over time
            let clear = link.transmit(now, bytes);
            assert!(clear >= last_clear, "case {case}: FIFO violated");
            assert!(clear >= now, "case {case}");
            last_clear = clear;
            total += bytes;
        }
        assert_eq!(link.bytes_carried(), total, "case {case}");
    }
}

/// Delivery time is monotone in message size on a fresh path, and queueing
/// only ever delays (never reorders) same-direction traffic.
#[test]
fn deliveries_queue_in_order() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let n = 1 + rng.gen_index(39);
        let mut net = Network::new(&GridConfig::uniform(2, 2));
        net.set_uplink_bandwidth(ClusterId(0), 200_000.0);
        let mut last_arrival = SimTime::ZERO;
        for _ in 0..n {
            let bytes = 1 + rng.gen_range(499_999);
            let d = net.deliver(SimTime::ZERO, ClusterId(0), ClusterId(1), bytes);
            assert!(
                d.arrives_at >= last_arrival,
                "case {case}: same-direction reorder"
            );
            last_arrival = d.arrives_at;
        }
    }
}

/// The uplink backlog drains: after waiting out the backlog, a fresh
/// message meets an idle link.
#[test]
fn backlog_eventually_drains() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let bytes = 1 + rng.gen_range(999_999);
        let mut net = Network::new(&GridConfig::uniform(2, 2));
        let d1 = net.deliver(SimTime::ZERO, ClusterId(0), ClusterId(1), bytes);
        let later = d1.arrives_at + SimDuration::from_secs(1);
        let d2 = net.deliver(later, ClusterId(0), ClusterId(1), bytes);
        let first_latency = d1.arrives_at.saturating_since(SimTime::ZERO);
        let second_latency = d2.arrives_at.saturating_since(later);
        // Allow a microsecond of rounding.
        assert!(
            second_latency <= first_latency + SimDuration::from_micros(1),
            "case {case}"
        );
    }
}

/// The event queue never loses events: everything pushed is popped exactly
/// once, in time order.
#[test]
fn event_queue_conserves_events() {
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        for case in 0..CASES {
            let mut rng = rng_for(4, case);
            let n = 1 + rng.gen_index(199);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1_000_000)).collect();
            let mut q: EventQueue<usize> = EventQueue::with_backend(backend);
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut seen = vec![false; times.len()];
            let mut last = SimTime::ZERO;
            while let Some((t, i)) = q.pop() {
                assert!(t >= last, "{backend:?} case {case}");
                assert!(!seen[i], "{backend:?} case {case}: event popped twice");
                assert_eq!(t, SimTime(times[i]), "{backend:?} case {case}");
                seen[i] = true;
                last = t;
            }
            assert!(seen.iter().all(|&s| s), "{backend:?} case {case}");
        }
    }
}

/// Under a randomized interleaving of pushes (including pushes relative to
/// the advancing clock, far-future spills past the wheel horizon, and
/// already-due times) and pops, the wheel and the heap emit the exact same
/// `(time, payload)` sequence.
#[test]
fn wheel_and_heap_pop_identically() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let mut wheel: EventQueue<usize> = EventQueue::with_backend(QueueBackend::Wheel);
        let mut heap: EventQueue<usize> = EventQueue::with_backend(QueueBackend::Heap);
        let mut next_id = 0usize;
        for _ in 0..500 {
            if rng.gen_index(3) > 0 || wheel.is_empty() {
                // Mostly near-future pushes, occasionally beyond the
                // 2^36 µs wheel horizon to exercise the overflow heap.
                let ahead = if rng.gen_index(20) == 0 {
                    (1 << 36) + rng.gen_range(1 << 20)
                } else {
                    rng.gen_range(5_000_000)
                };
                let at = wheel.now() + SimDuration(ahead);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            } else {
                assert_eq!(wheel.pop(), heap.pop(), "case {case}");
            }
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h, "case {case}: drain diverged");
            if w.is_none() {
                break;
            }
        }
    }
}

/// An injection schedule fires every entry exactly once, in order, under
/// arbitrary polling patterns.
#[test]
fn schedule_fires_everything_once() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let n_times = 1 + rng.gen_index(49);
        let times: Vec<u64> = (0..n_times).map(|_| rng.gen_range(10_000)).collect();
        let n_polls = 1 + rng.gen_index(79);
        let mut polls: Vec<u64> = (0..n_polls).map(|_| rng.gen_range(12_000)).collect();
        let entries: Vec<ScheduledInjection> = times
            .iter()
            .map(|&t| ScheduledInjection {
                at: SimTime(t),
                injection: Injection::CpuLoad {
                    cluster: ClusterId(0),
                    count: None,
                    factor: 2.0,
                },
            })
            .collect();
        let mut s = InjectionSchedule::new(entries);
        polls.sort_unstable();
        let mut fired = 0usize;
        let mut last_fired_at = SimTime::ZERO;
        for &p in &polls {
            for e in s.pop_due(SimTime(p)) {
                assert!(e.at >= last_fired_at, "case {case}");
                assert!(e.at <= SimTime(p), "case {case}");
                last_fired_at = e.at;
                fired += 1;
            }
        }
        fired += s.pop_due(SimTime::MAX).len();
        assert_eq!(fired, times.len(), "case {case}");
        assert_eq!(s.remaining(), 0, "case {case}");
    }
}
