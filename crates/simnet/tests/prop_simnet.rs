//! Property tests for the discrete-event substrate.

use proptest::prelude::*;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_simnet::{EventQueue, Injection, InjectionSchedule, Network, ScheduledInjection, SharedLink};

proptest! {
    /// A shared link is FIFO: transmissions enqueued in order clear in
    /// order, and total carriage equals the sum of bytes.
    #[test]
    fn shared_link_is_fifo(sizes in prop::collection::vec(1u64..1_000_000, 1..50)) {
        let mut link = SharedLink::new(SimDuration::from_millis(1), 1_000_000.0);
        let mut last_clear = SimTime::ZERO;
        let mut total = 0u64;
        for (i, &bytes) in sizes.iter().enumerate() {
            let now = SimTime::from_millis(i as u64); // senders arrive over time
            let clear = link.transmit(now, bytes);
            prop_assert!(clear >= last_clear, "FIFO violated");
            prop_assert!(clear >= now);
            last_clear = clear;
            total += bytes;
        }
        prop_assert_eq!(link.bytes_carried(), total);
    }

    /// Delivery time is monotone in message size on a fresh path, and
    /// queueing only ever delays (never reorders) same-direction traffic.
    #[test]
    fn deliveries_queue_in_order(msgs in prop::collection::vec(1u64..500_000, 1..40)) {
        let mut net = Network::new(&GridConfig::uniform(2, 2));
        net.set_uplink_bandwidth(ClusterId(0), 200_000.0);
        let mut last_arrival = SimTime::ZERO;
        for &bytes in &msgs {
            let d = net.deliver(SimTime::ZERO, ClusterId(0), ClusterId(1), bytes);
            prop_assert!(d.arrives_at >= last_arrival, "same-direction reorder");
            last_arrival = d.arrives_at;
        }
    }

    /// The uplink backlog drains: after waiting out the backlog, a fresh
    /// 0-extra-byte message meets an idle link.
    #[test]
    fn backlog_eventually_drains(bytes in 1u64..1_000_000) {
        let mut net = Network::new(&GridConfig::uniform(2, 2));
        let d1 = net.deliver(SimTime::ZERO, ClusterId(0), ClusterId(1), bytes);
        let later = d1.arrives_at + SimDuration::from_secs(1);
        let d2 = net.deliver(later, ClusterId(0), ClusterId(1), bytes);
        let first_latency = d1.arrives_at.saturating_since(SimTime::ZERO);
        let second_latency = d2.arrives_at.saturating_since(later);
        // Allow a microsecond of rounding.
        prop_assert!(second_latency <= first_latency + SimDuration::from_micros(1));
    }

    /// The event queue never loses events: everything pushed is popped
    /// exactly once, in time order.
    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut seen = vec![false; times.len()];
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            prop_assert!(!seen[i], "event popped twice");
            prop_assert_eq!(t, SimTime(times[i]));
            seen[i] = true;
            last = t;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// An injection schedule fires every entry exactly once, in order,
    /// under arbitrary polling patterns.
    #[test]
    fn schedule_fires_everything_once(
        times in prop::collection::vec(0u64..10_000, 1..50),
        polls in prop::collection::vec(0u64..12_000, 1..80),
    ) {
        let entries: Vec<ScheduledInjection> = times
            .iter()
            .map(|&t| ScheduledInjection {
                at: SimTime(t),
                injection: Injection::CpuLoad {
                    cluster: ClusterId(0),
                    count: None,
                    factor: 2.0,
                },
            })
            .collect();
        let mut s = InjectionSchedule::new(entries);
        let mut sorted_polls = polls.clone();
        sorted_polls.sort_unstable();
        let mut fired = 0usize;
        let mut last_fired_at = SimTime::ZERO;
        for &p in &sorted_polls {
            for e in s.pop_due(SimTime(p)) {
                prop_assert!(e.at >= last_fired_at);
                prop_assert!(e.at <= SimTime(p));
                last_fired_at = e.at;
                fired += 1;
            }
        }
        fired += s.pop_due(SimTime::MAX).len();
        prop_assert_eq!(fired, times.len());
        prop_assert_eq!(s.remaining(), 0);
    }
}
