//! # sagrid-simnet
//!
//! The deterministic discrete-event substrate standing in for the DAS-2
//! wide-area system the paper evaluated on (DESIGN.md §2).
//!
//! * [`kernel`] — a minimal discrete-event kernel: a virtual clock and a
//!   totally-ordered event queue, generic over the event payload;
//! * [`net`] — the network model: per-cluster LANs (latency + per-message
//!   transmit time) and shared, FIFO-queued cluster uplinks onto a WAN
//!   backbone. An overloaded uplink queues traffic exactly like the paper's
//!   traffic-shaped 100 KB/s link;
//! * [`inject`] — scenario event injection: background CPU load, uplink
//!   bandwidth shaping, node/cluster crashes — the knobs scenarios 3–6 turn.
//!
//! Determinism: event ordering is `(time, sequence-number)` with sequence
//! numbers issued at push time, so simulations replay bit-identically.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod inject;
pub mod kernel;
pub mod net;

pub use inject::{Injection, InjectionSchedule, ScheduledInjection};
pub use kernel::{EventQueue, QueueBackend, ScheduledEvent};
pub use net::{Network, SharedLink};
