//! Wide-area network model.
//!
//! The paper's resource model (§2): nodes within a site share a fast LAN;
//! sites connect to the internet backbone through an **uplink** that "might
//! become a bottleneck, causing the inter-site communication to suffer from
//! low bandwidths". We model exactly that failure mode:
//!
//! * **LAN messages** cost `lan.latency + bytes / lan.bandwidth` — switched
//!   Ethernet, no shared queueing (per-port contention is negligible for
//!   steal-sized messages);
//! * **WAN messages** serialize FIFO through the *source* and *destination*
//!   uplinks (each a [`SharedLink`] with a `busy_until` horizon) and then pay
//!   the backbone latency. When scenario 4 shapes an uplink to 100 KB/s,
//!   every transfer in or out of that cluster queues behind the previous
//!   one — reproducing the enormous iteration-time variation of Figure 5.
//!
//! Bandwidth changes take effect for transfers *starting* after the change;
//! in-flight transfers keep their reserved slot (same observable behaviour
//! as a kernel traffic shaper draining its token bucket).

use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::time::{SimDuration, SimTime};

/// Transmission time of `bytes` at a link with the given per-byte cost,
/// rounded to the nearest microsecond (matching
/// [`SimDuration::from_secs_f64`]'s rounding of `bytes / bandwidth`).
#[inline]
fn tx_time(bytes: u64, us_per_byte: f64) -> SimDuration {
    SimDuration((bytes as f64 * us_per_byte).round() as u64)
}

/// A FIFO-serialized shared link (a cluster's WAN uplink).
#[derive(Clone, Debug)]
pub struct SharedLink {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Current bandwidth in bytes/second.
    bandwidth_bps: f64,
    /// Precomputed `1e6 / bandwidth_bps` — the transmit cost of one byte in
    /// microseconds. Keeps the per-message hot path free of divisions.
    us_per_byte: f64,
    /// Time until which the link's transmission slot is reserved.
    busy_until: SimTime,
    /// Total bytes ever accepted (for reports / bandwidth estimation).
    bytes_carried: u64,
}

impl SharedLink {
    /// Creates a link with the given latency and bandwidth (bytes/s, > 0).
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        Self {
            latency,
            bandwidth_bps,
            us_per_byte: 1e6 / bandwidth_bps,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
        }
    }

    /// Current bandwidth in bytes/second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Re-shapes the link (scenario 4/5 traffic shaping, or recovery).
    pub fn set_bandwidth(&mut self, bandwidth_bps: f64) {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        self.bandwidth_bps = bandwidth_bps;
        self.us_per_byte = 1e6 / bandwidth_bps;
    }

    /// Total bytes accepted so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Enqueues a `bytes`-sized transfer at `now`; returns the time the last
    /// byte has *left* this link (excluding propagation latency — the caller
    /// adds `self.latency` once per traversal).
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let tx = tx_time(bytes, self.us_per_byte);
        self.busy_until = start + tx;
        self.bytes_carried += bytes;
        self.busy_until
    }

    /// Time at which the link becomes free (for diagnostics).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a transfer enqueued at `now` would currently suffer.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }
}

/// Per-message delivery metadata returned by [`Network::deliver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the message arrives at the destination node.
    pub arrives_at: SimTime,
    /// When the last byte has drained the *sender's* link — until then a
    /// blocking sender (TCP backpressure) cannot proceed.
    pub src_clear_at: SimTime,
    /// Whether the message stayed within one cluster.
    pub intra_cluster: bool,
}

/// The whole grid network: per-cluster LAN specs + shared uplinks + backbone.
#[derive(Clone, Debug)]
pub struct Network {
    lan_latency: Vec<SimDuration>,
    lan_us_per_byte: Vec<f64>,
    uplinks: Vec<SharedLink>,
    backbone_latency: SimDuration,
}

impl Network {
    /// Builds the network from a grid configuration.
    pub fn new(cfg: &GridConfig) -> Self {
        Self {
            lan_latency: cfg.clusters.iter().map(|c| c.lan.latency).collect(),
            lan_us_per_byte: cfg
                .clusters
                .iter()
                .map(|c| 1e6 / c.lan.bandwidth_bps)
                .collect(),
            uplinks: cfg
                .clusters
                .iter()
                .map(|c| SharedLink::new(c.uplink.latency, c.uplink.bandwidth_bps))
                .collect(),
            backbone_latency: cfg.backbone_latency,
        }
    }

    /// Number of clusters known to the network.
    pub fn n_clusters(&self) -> usize {
        self.uplinks.len()
    }

    /// Computes the delivery time of a `bytes`-sized message sent at `now`
    /// from a node in `from` to a node in `to`, reserving uplink capacity as
    /// a side effect.
    pub fn deliver(
        &mut self,
        now: SimTime,
        from: ClusterId,
        to: ClusterId,
        bytes: u64,
    ) -> Delivery {
        if from == to {
            let tx = tx_time(bytes, self.lan_us_per_byte[from.index()]);
            Delivery {
                arrives_at: now + self.lan_latency[from.index()] + tx,
                src_clear_at: now + tx,
                intra_cluster: true,
            }
        } else {
            // Serialize through the source uplink, cross the backbone, then
            // serialize through the destination uplink.
            let src_done = self.uplinks[from.index()].transmit(now, bytes);
            let src_lat = self.uplinks[from.index()].latency;
            let at_dst_uplink = src_done + src_lat + self.backbone_latency;
            let dst_done = self.uplinks[to.index()].transmit(at_dst_uplink, bytes);
            let dst_lat = self.uplinks[to.index()].latency;
            Delivery {
                arrives_at: dst_done + dst_lat,
                src_clear_at: src_done,
                intra_cluster: false,
            }
        }
    }

    /// Reshapes a cluster's uplink bandwidth (bytes/second).
    pub fn set_uplink_bandwidth(&mut self, cluster: ClusterId, bandwidth_bps: f64) {
        self.uplinks[cluster.index()].set_bandwidth(bandwidth_bps);
    }

    /// Current uplink bandwidth of a cluster (bytes/second).
    pub fn uplink_bandwidth(&self, cluster: ClusterId) -> f64 {
        self.uplinks[cluster.index()].bandwidth_bps()
    }

    /// The uplink of `cluster` (for diagnostics and tests).
    pub fn uplink(&self, cluster: ClusterId) -> &SharedLink {
        &self.uplinks[cluster.index()]
    }

    /// One-way zero-byte message latency between two clusters.
    pub fn base_latency(&self, from: ClusterId, to: ClusterId) -> SimDuration {
        if from == to {
            self.lan_latency[from.index()]
        } else {
            self.uplinks[from.index()].latency
                + self.backbone_latency
                + self.uplinks[to.index()].latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::config::GridConfig;

    fn net() -> Network {
        Network::new(&GridConfig::uniform(3, 4))
    }

    #[test]
    fn intra_cluster_is_cheap_and_stateless() {
        let mut n = net();
        let t0 = SimTime::from_secs(1);
        let d1 = n.deliver(t0, ClusterId(0), ClusterId(0), 1_000);
        let d2 = n.deliver(t0, ClusterId(0), ClusterId(0), 1_000);
        assert!(d1.intra_cluster);
        // LAN has no shared queue: identical messages arrive identically.
        assert_eq!(d1.arrives_at, d2.arrives_at);
        assert!(d1.arrives_at > t0);
    }

    #[test]
    fn inter_cluster_pays_backbone_and_uplinks() {
        let mut n = net();
        let t0 = SimTime::ZERO;
        let intra = n.deliver(t0, ClusterId(0), ClusterId(0), 64).arrives_at;
        let inter = n.deliver(t0, ClusterId(0), ClusterId(1), 64).arrives_at;
        assert!(inter > intra, "WAN must be slower than LAN");
    }

    #[test]
    fn shaped_uplink_queues_traffic() {
        let mut n = net();
        // Shape cluster 1's uplink to 100 KB/s, like scenario 4.
        n.set_uplink_bandwidth(ClusterId(1), 100_000.0);
        let t0 = SimTime::ZERO;
        // Two 100 KB messages into cluster 1: the second queues a full
        // second behind the first.
        let d1 = n
            .deliver(t0, ClusterId(0), ClusterId(1), 100_000)
            .arrives_at;
        let d2 = n
            .deliver(t0, ClusterId(0), ClusterId(1), 100_000)
            .arrives_at;
        let gap = d2.saturating_since(d1);
        assert!(
            (gap.as_secs_f64() - 1.0).abs() < 0.05,
            "expected ~1s serialization gap, got {gap}"
        );
    }

    #[test]
    fn unrelated_uplinks_do_not_interfere() {
        let mut n = net();
        n.set_uplink_bandwidth(ClusterId(1), 100_000.0);
        let t0 = SimTime::ZERO;
        // Saturate cluster 1's uplink...
        for _ in 0..10 {
            n.deliver(t0, ClusterId(0), ClusterId(1), 1_000_000);
        }
        // ...traffic between clusters 0 and 2 is unaffected apart from the
        // (tiny) reservation the above made on cluster 0's fast uplink.
        let d = n.deliver(t0, ClusterId(2), ClusterId(0), 64);
        assert!(d.arrives_at.as_secs_f64() < 0.1);
    }

    #[test]
    fn bandwidth_change_applies_to_new_transfers() {
        let mut n = net();
        let t0 = SimTime::ZERO;
        let fast = n.deliver(t0, ClusterId(0), ClusterId(1), 1_000_000);
        n.set_uplink_bandwidth(ClusterId(0), 10_000.0);
        let slow_start = fast.arrives_at + SimDuration::from_secs(1);
        let slow = n.deliver(slow_start, ClusterId(0), ClusterId(1), 1_000_000);
        let fast_dur = fast.arrives_at.saturating_since(t0);
        let slow_dur = slow.arrives_at.saturating_since(slow_start);
        assert!(slow_dur.as_secs_f64() > 50.0 * fast_dur.as_secs_f64());
    }

    #[test]
    fn shared_link_backlog_reports_queue() {
        let mut l = SharedLink::new(SimDuration::from_millis(1), 1_000.0);
        let t0 = SimTime::ZERO;
        assert_eq!(l.backlog(t0), SimDuration::ZERO);
        l.transmit(t0, 2_000); // 2 seconds of transmission
        assert!((l.backlog(t0).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(l.bytes_carried(), 2_000);
        // After the queue drains, backlog is zero again.
        assert_eq!(l.backlog(SimTime::from_secs(3)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SharedLink::new(SimDuration::ZERO, 0.0);
    }

    #[test]
    fn base_latency_symmetric_uniform() {
        let n = net();
        assert_eq!(
            n.base_latency(ClusterId(0), ClusterId(2)),
            n.base_latency(ClusterId(2), ClusterId(0))
        );
    }
}
