//! Scenario event injection.
//!
//! The paper's evaluation perturbs a running application in four ways:
//! introducing heavy CPU load on one cluster's processors (scenario 3),
//! traffic-shaping an uplink to ~100 KB/s (scenario 4), both at once with an
//! additional light load (scenario 5), and crashing entire clusters
//! (scenario 6). [`InjectionSchedule`] is the deterministic script of such
//! perturbations that a scenario hands to the simulation engine.

use sagrid_core::ids::ClusterId;
use sagrid_core::time::SimTime;

/// A perturbation applied to the emulated grid at a point in virtual time.
#[derive(Clone, Debug, PartialEq)]
pub enum Injection {
    /// Multiply the *effective* load of `count` nodes (or all, if `None`) in
    /// `cluster` by `factor`: the node's useful speed becomes
    /// `base_speed / factor`. `factor = 1.0` removes previously injected
    /// load. The paper's scenario 3 uses a heavy load (we use ×10); scenario
    /// 5's "relatively light" load makes nodes ~2× slower.
    CpuLoad {
        /// Affected cluster.
        cluster: ClusterId,
        /// How many of the cluster's nodes are loaded (`None` = all).
        count: Option<usize>,
        /// Slowdown factor (≥ 1.0 loads the node, 1.0 restores it).
        factor: f64,
    },
    /// Re-shape a cluster's uplink to `bandwidth_bps` bytes/second
    /// (scenario 4 uses ~100 KB/s).
    UplinkBandwidth {
        /// Affected cluster.
        cluster: ClusterId,
        /// New uplink bandwidth in bytes per second.
        bandwidth_bps: f64,
    },
    /// Crash every node of `cluster` (scenario 6 crashes 2 of 3 clusters).
    CrashCluster {
        /// The crashing cluster.
        cluster: ClusterId,
    },
    /// Crash `count` nodes of `cluster`.
    CrashNodes {
        /// Affected cluster.
        cluster: ClusterId,
        /// Number of nodes to crash.
        count: usize,
    },
    /// Ask the resource pool for `count` additional nodes, as if an
    /// external scheduler granted more capacity (a flash crowd of donated
    /// machines). Honors blacklists and the join delay like any
    /// coordinator-initiated add.
    Grow {
        /// Number of nodes to request.
        count: usize,
        /// Cluster to prefer when allocating (`None` = scheduler's choice).
        prefer: Option<ClusterId>,
    },
    /// Politely withdraw `count` nodes of `cluster` (reservation expiry /
    /// administrative drain): the nodes finish their current work, hand
    /// their queues back and leave — unlike a crash, nothing is lost.
    Shrink {
        /// Affected cluster.
        cluster: ClusterId,
        /// Number of nodes asked to leave.
        count: usize,
    },
}

/// An [`Injection`] bound to its firing time.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledInjection {
    /// Virtual time at which the perturbation happens.
    pub at: SimTime,
    /// What happens.
    pub injection: Injection,
}

/// A time-sorted script of perturbations with O(1) "what's due" polling.
#[derive(Clone, Debug, Default)]
pub struct InjectionSchedule {
    // Sorted by time ascending; `next` indexes the first not-yet-fired entry.
    entries: Vec<ScheduledInjection>,
    next: usize,
}

impl InjectionSchedule {
    /// An empty schedule (the ideal scenario 1).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schedule from `(time, injection)` pairs, sorting by time.
    /// Entries at equal times fire in the order given.
    pub fn new(mut entries: Vec<ScheduledInjection>) -> Self {
        entries.sort_by_key(|e| e.at);
        Self { entries, next: 0 }
    }

    /// Convenience: appends an injection (keeps the schedule sorted).
    pub fn push(&mut self, at: SimTime, injection: Injection) {
        assert_eq!(
            self.next, 0,
            "cannot extend a schedule that already started firing"
        );
        self.entries.push(ScheduledInjection { at, injection });
        self.entries.sort_by_key(|e| e.at);
    }

    /// Time of the next perturbation, if any remain.
    pub fn next_time(&self) -> Option<SimTime> {
        self.entries.get(self.next).map(|e| e.at)
    }

    /// Pops every perturbation due at or before `now`, in order.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<ScheduledInjection> {
        let mut due = Vec::new();
        while let Some(e) = self.entries.get(self.next) {
            if e.at <= now {
                due.push(e.clone());
                self.next += 1;
            } else {
                break;
            }
        }
        due
    }

    /// Number of perturbations not yet fired.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.next
    }

    /// Firing times of the not-yet-fired perturbations, ascending (with
    /// duplicates for entries sharing a time). Lets the engine schedule its
    /// wake-ups without cloning and draining the whole schedule.
    pub fn upcoming_times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.entries[self.next..].iter().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(cluster: u16, factor: f64) -> Injection {
        Injection::CpuLoad {
            cluster: ClusterId(cluster),
            count: None,
            factor,
        }
    }

    #[test]
    fn schedule_sorts_and_pops_in_order() {
        let mut s = InjectionSchedule::new(vec![
            ScheduledInjection {
                at: SimTime::from_secs(200),
                injection: load(1, 10.0),
            },
            ScheduledInjection {
                at: SimTime::from_secs(100),
                injection: load(0, 2.0),
            },
        ]);
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_time(), Some(SimTime::from_secs(100)));
        let due = s.pop_due(SimTime::from_secs(150));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].injection, load(0, 2.0));
        assert_eq!(s.remaining(), 1);
        let due = s.pop_due(SimTime::from_secs(1000));
        assert_eq!(due.len(), 1);
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn pop_due_before_first_returns_nothing() {
        let mut s = InjectionSchedule::new(vec![ScheduledInjection {
            at: SimTime::from_secs(10),
            injection: Injection::CrashCluster {
                cluster: ClusterId(2),
            },
        }]);
        assert!(s.pop_due(SimTime::from_secs(9)).is_empty());
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    fn equal_times_fire_in_given_order() {
        let t = SimTime::from_secs(5);
        let mut s = InjectionSchedule::new(vec![
            ScheduledInjection {
                at: t,
                injection: load(0, 2.0),
            },
            ScheduledInjection {
                at: t,
                injection: load(1, 3.0),
            },
        ]);
        let due = s.pop_due(t);
        assert_eq!(due[0].injection, load(0, 2.0));
        assert_eq!(due[1].injection, load(1, 3.0));
    }

    #[test]
    fn push_keeps_sorted() {
        let mut s = InjectionSchedule::empty();
        s.push(SimTime::from_secs(30), load(0, 2.0));
        s.push(SimTime::from_secs(10), load(1, 2.0));
        assert_eq!(s.next_time(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn randomized_schedules_fire_every_injection_exactly_once_in_order() {
        // Property check against the engine's polling pattern: whatever the
        // schedule (duplicate times included) and however the poll times
        // advance, every injection fires exactly once, in time order, with
        // equal-time entries in submission order.
        use sagrid_core::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(0xD15E_A5E5);
        for _ in 0..50 {
            let n = 1 + rng.gen_index(40);
            let entries: Vec<ScheduledInjection> = (0..n)
                .map(|i| ScheduledInjection {
                    // A small time range forces plenty of collisions; the
                    // factor tags each entry with its submission index.
                    at: SimTime::from_secs(rng.gen_range(20)),
                    injection: load((i % 3) as u16, i as f64),
                })
                .collect();
            let mut expected: Vec<ScheduledInjection> = entries.clone();
            // The documented order: time ascending, ties by submission
            // order (a stable sort preserves it).
            expected.sort_by_key(|e| e.at);

            let mut s = InjectionSchedule::new(entries);
            assert_eq!(s.remaining(), n);
            let upcoming: Vec<SimTime> = s.upcoming_times().collect();
            assert_eq!(upcoming, expected.iter().map(|e| e.at).collect::<Vec<_>>());

            let mut fired = Vec::new();
            let mut now = 0u64;
            while s.remaining() > 0 {
                // Advance by random (possibly zero) steps, like an event
                // loop polling at whatever times its queue surfaces.
                now += rng.gen_range(4);
                let due = s.pop_due(SimTime::from_secs(now));
                for e in &due {
                    assert!(
                        e.at <= SimTime::from_secs(now),
                        "an injection fired before its time"
                    );
                }
                fired.extend(due);
            }
            assert_eq!(fired, expected, "every injection exactly once, in order");
            assert!(s.pop_due(SimTime::from_secs(now + 1000)).is_empty());
        }
    }
}
