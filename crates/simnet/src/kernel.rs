//! Discrete-event kernel.
//!
//! A deliberately small core: the simulation *engine* (in `sagrid-simgrid`)
//! owns all world state and encodes behaviour in an event enum; this module
//! only guarantees a total, deterministic execution order.
//!
//! Ordering is `(time, seq)` where `seq` is a monotonically increasing
//! sequence number assigned at push time. Two events scheduled for the same
//! instant therefore execute in scheduling order, which (a) is deterministic
//! and (b) preserves intuitive causality: an event scheduled as a consequence
//! of another never runs before it.

use sagrid_core::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus its scheduled execution time.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking sequence number (unique per queue).
    pub seq: u64,
    /// The engine-defined payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list with a virtual clock.
///
/// The clock only moves forward: popping an event advances `now()` to the
/// event's timestamp, and pushing an event in the past is a logic error
/// (panics in all builds — a simulation that violates causality produces
/// silently wrong figures, which is worse than a crash).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for throughput benches).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics if `at` is before the current time.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} < now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (simulation end).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        self.processed += 1;
        Some((ev.at, ev.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(1), 1));
        // Schedule relative to now.
        q.push(q.now() + SimDuration::from_secs(1), 2);
        q.push(q.now() + SimDuration::from_millis(500), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(4), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
