//! Discrete-event kernel.
//!
//! A deliberately small core: the simulation *engine* (in `sagrid-simgrid`)
//! owns all world state and encodes behaviour in an event enum; this module
//! only guarantees a total, deterministic execution order.
//!
//! Ordering is `(time, seq)` where `seq` is a monotonically increasing
//! sequence number assigned at push time. Two events scheduled for the same
//! instant therefore execute in scheduling order, which (a) is deterministic
//! and (b) preserves intuitive causality: an event scheduled as a consequence
//! of another never runs before it.
//!
//! # Queue backends
//!
//! Two implementations share the `(time, seq)` contract and pop *identical*
//! sequences for identical push sequences:
//!
//! * [`QueueBackend::Wheel`] (default) — a hierarchical timer wheel:
//!   [`LEVELS`] levels of [`SLOTS`] slots each, 1 µs ticks, per-level
//!   occupancy bitmaps, and per-slot FIFO buckets. Insert and pop are O(1)
//!   amortized. Slots are indexed by the bits of the event's absolute
//!   timestamp, and the level is the position of the highest bit in
//!   `at XOR cursor` (the wheel's internal clock), so slot order within a
//!   level *is* time order and no modulo wrap-around ambiguity exists.
//!   Buckets store `(timestamp, payload)` pairs inline — the engine's slimmed
//!   event enum is small enough that moving it through a cascade beats the
//!   extra indirection of a payload slab (both were measured). Events beyond
//!   the wheel horizon (`at - now >= 2^36` µs, ≈ 19 hours) go to a spill-over
//!   binary heap ordered by `(at, seq)` and re-enter the wheel when the
//!   cursor reaches their 2^36 µs block.
//! * [`QueueBackend::Heap`] — the original `BinaryHeap<ScheduledEvent>`;
//!   O(log n), kept as the oracle for equivalence tests and as a fallback.
//!
//! Why the pop order is identical: while the cursor is at `C`, all events
//! with the same timestamp map to the same `(level, slot)` (a pure function
//! of `at` and `C`), so they sit adjacently in one FIFO bucket in push
//! (= seq) order; cascades drain buckets front-to-back, preserving that
//! adjacency; and a level-0 slot holds exactly one timestamp (two distinct
//! times with equal low six bits differ somewhere above bit 5, which would
//! put at least one of them on a higher level). All events on level `k` are
//! strictly earlier than all events on level `k+1`, and occupied slot index
//! order within a level is time order, so "first slot of the lowest
//! non-empty level" always yields the global minimum.

use sagrid_core::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Number of slot-index bits per wheel level (64 slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `k` spans `2^(6(k+1))` µs of future.
const LEVELS: usize = 6;
/// Events further than `2^HORIZON_BITS` µs ahead spill to the overflow heap.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// Which future-event-list implementation an [`EventQueue`] uses.
///
/// Both backends implement the same `(time, seq)` total order and are
/// observationally identical; `Wheel` is the fast default, `Heap` is the
/// reference implementation kept for equivalence testing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timer wheel, O(1) amortized (default).
    #[default]
    Wheel,
    /// Binary min-heap oracle, O(log n).
    Heap,
}

/// An event plus its scheduled execution time.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking sequence number (unique per queue).
    pub seq: u64,
    /// The engine-defined payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A beyond-horizon event waiting in the spill-over heap.
///
/// Carries `seq` so that draining a 2^36 µs block back into the wheel
/// re-inserts equal-timestamp events in push order (the wheel's FIFO
/// buckets then preserve it).
#[derive(Clone, Debug)]
struct Spilled<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Spilled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Spilled<E> {}
impl<E> PartialOrd for Spilled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Spilled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap pops the earliest (at, seq) first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Hierarchical timer wheel state (see module docs for the invariants).
#[derive(Debug)]
struct Wheel<E> {
    /// `LEVELS * SLOTS` FIFO buckets; bucket `level * SLOTS + slot`.
    buckets: Box<[VecDeque<(u64, E)>]>,
    /// Per-level slot-occupancy bitmaps (bit `s` set ⇔ bucket non-empty).
    occupied: [u64; LEVELS],
    /// Internal wheel clock; equals the queue's `now` between pops (cascades
    /// advance it to slot starts mid-pop, never past the next event).
    cursor: u64,
    /// Beyond-horizon events, earliest `(at, seq)` first.
    overflow: BinaryHeap<Spilled<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Self {
            buckets: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Files a within-horizon event into its `(level, slot)` bucket.
    #[inline]
    fn file(&mut self, at: u64, event: E) {
        debug_assert!(at >= self.cursor);
        let x = at ^ self.cursor;
        debug_assert!(x >> HORIZON_BITS == 0);
        let (level, slot) = if x == 0 {
            (0, (at & (SLOTS as u64 - 1)) as usize)
        } else {
            let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
            let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            (level, slot)
        };
        self.buckets[level * SLOTS + slot].push_back((at, event));
        self.occupied[level] |= 1u64 << slot;
    }

    fn push(&mut self, at: u64, seq: u64, event: E) {
        if (at ^ self.cursor) >> HORIZON_BITS != 0 {
            self.overflow.push(Spilled { at, seq, event });
        } else {
            self.file(at, event);
        }
    }

    /// Lowest non-empty level, or `LEVELS` when the wheel itself is empty.
    #[inline]
    fn lowest_level(&self) -> usize {
        let mut level = 0;
        while level < LEVELS && self.occupied[level] == 0 {
            level += 1;
        }
        level
    }

    fn pop(&mut self) -> Option<(u64, E)> {
        loop {
            let level = self.lowest_level();
            if level == LEVELS {
                // Wheel empty: pull the next 2^36 µs block from overflow.
                // All overflow events are in later blocks than everything the
                // wheel held, so this never reorders.
                let block = self.overflow.peek()?.at >> HORIZON_BITS;
                self.cursor = block << HORIZON_BITS;
                while let Some(s) = self.overflow.peek() {
                    if s.at >> HORIZON_BITS != block {
                        break;
                    }
                    let s = self.overflow.pop().expect("peeked");
                    // Heap order is (at, seq), so equal-`at` spills re-enter
                    // their bucket in push order.
                    self.file(s.at, s.event);
                }
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                let bucket = &mut self.buckets[slot];
                let (at, event) = bucket.pop_front().expect("occupancy bit set");
                if bucket.is_empty() {
                    self.occupied[0] &= !(1u64 << slot);
                }
                self.cursor = at;
                return Some((at, event));
            }
            // Cascade: advance the cursor to the slot's start time (still
            // ≤ every event in the slot) and re-file the bucket one or more
            // levels down.
            let shift = SLOT_BITS * level as u32;
            let upper = self.cursor >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
            self.cursor = upper | ((slot as u64) << shift);
            self.occupied[level] &= !(1u64 << slot);
            let mut bucket = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            for (at, event) in bucket.drain(..) {
                self.file(at, event);
            }
            // Hand the (now empty) allocation back to avoid churn.
            self.buckets[level * SLOTS + slot] = bucket;
        }
    }

    fn peek_time(&self) -> Option<u64> {
        let level = self.lowest_level();
        if level == LEVELS {
            return self.overflow.peek().map(|s| s.at);
        }
        let slot = self.occupied[level].trailing_zeros() as usize;
        if level == 0 {
            // A level-0 slot holds exactly one timestamp.
            return self.buckets[slot].front().map(|&(at, _)| at);
        }
        // Higher-level buckets mix timestamps; scan for the minimum. Not on
        // the simulation hot path (the engine never peeks between events).
        self.buckets[level * SLOTS + slot]
            .iter()
            .map(|&(at, _)| at)
            .min()
    }
}

/// The future-event list behind an [`EventQueue`].
#[derive(Debug)]
enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<ScheduledEvent<E>>),
}

/// A deterministic future-event list with a virtual clock.
///
/// The clock only moves forward: popping an event advances `now()` to the
/// event's timestamp. Scheduling into the past is a logic error: it trips a
/// `debug_assert!` in debug builds, and in release builds the timestamp is
/// clamped to `now()` (the event still runs, at the earliest legal time, and
/// both backends agree on the resulting order — see [`EventQueue::push`]).
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero (timer-wheel backend).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Wheel)
    }

    /// An empty queue using the given backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self {
            backend: match backend {
                QueueBackend::Wheel => Backend::Wheel(Wheel::new()),
                QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
            },
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
            len: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Wheel(_) => QueueBackend::Wheel,
            Backend::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for throughput benches).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// `at` must not be before `now()`: scheduling into the past violates
    /// causality. Debug builds assert; release builds clamp `at` to `now()`,
    /// so the event fires immediately after the current one (and, like any
    /// same-time tie, in push order). The clamp is part of the contract —
    /// both queue backends apply it before ordering, so they stay
    /// pop-for-pop identical even on this edge.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} < now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        match &mut self.backend {
            Backend::Wheel(w) => w.push(at.0, seq, event),
            Backend::Heap(h) => h.push(ScheduledEvent { at, seq, event }),
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (simulation end).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = match &mut self.backend {
            Backend::Wheel(w) => {
                let (at, event) = w.pop()?;
                (SimTime(at), event)
            }
            Backend::Heap(h) => {
                let ev = h.pop()?;
                (ev.at, ev.event)
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        self.len -= 1;
        Some((at, event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_time().map(SimTime),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
    use sagrid_core::time::SimDuration;

    fn both() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_backend(QueueBackend::Wheel),
            EventQueue::with_backend(QueueBackend::Heap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            q.push(SimTime::from_secs(3), "c");
            q.push(SimTime::from_secs(1), "a");
            q.push(SimTime::from_secs(2), "b");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{backend:?}");
        }
    }

    #[test]
    fn ties_break_in_push_order() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            let t = SimTime::from_secs(5);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            q.push(SimTime::from_secs(2), ());
            q.push(SimTime::from_secs(1), ());
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(1));
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(2));
            assert_eq!(q.processed(), 2);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_asserts_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn scheduling_into_the_past_clamps_in_release() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            q.push(SimTime::from_secs(10), "first");
            q.pop();
            q.push(SimTime::from_secs(5), "late-a"); // clamped to now = 10s
            q.push(SimTime::from_secs(3), "late-b"); // ditto, after late-a
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime::from_secs(10), "late-a"), "{backend:?}");
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime::from_secs(10), "late-b"), "{backend:?}");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            q.push(SimTime::from_secs(1), 1u32);
            let (t, e) = q.pop().unwrap();
            assert_eq!((t, e), (SimTime::from_secs(1), 1));
            // Schedule relative to now.
            q.push(q.now() + SimDuration::from_secs(1), 2);
            q.push(q.now() + SimDuration::from_millis(500), 3);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 2);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(4), ());
            q.push(SimTime::from_secs(2), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)), "{backend:?}");
        }
    }

    /// Far-future events (beyond the 2^36 µs wheel horizon) take the
    /// overflow path and still pop in exact `(time, seq)` order.
    #[test]
    fn overflow_events_keep_total_order() {
        let horizon = SimDuration::from_micros(1 << HORIZON_BITS);
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            let far = SimTime::ZERO + horizon + SimDuration::from_secs(7);
            q.push(far, "far-a");
            q.push(SimTime::from_secs(1), "near");
            q.push(far, "far-b"); // same instant: push order must hold
            q.push(far + SimDuration::from_micros(1), "far-c");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                vec!["near", "far-a", "far-b", "far-c"],
                "{backend:?}"
            );
            assert_eq!(q.now(), far + SimDuration::from_micros(1));
        }
    }

    /// Pushing while popping across several wheel blocks: overflow events
    /// re-enter the wheel and interleave correctly with near events.
    #[test]
    fn overflow_interleaves_with_near_events() {
        let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut rng = Xoshiro256StarStar::seeded(0xB10C);
        let mut pushes: Vec<(SimTime, u64)> = Vec::new();
        for i in 0..2_000u64 {
            // Mix of near (µs..s) and far (multi-day) offsets.
            let offset = if rng.gen_index(4) == 0 {
                (1u64 << HORIZON_BITS) * (1 + rng.gen_range(3))
            } else {
                1 + rng.gen_range(1_000_000)
            };
            pushes.push((SimTime(offset), i));
        }
        for &(t, i) in &pushes {
            wheel.push(t, i);
            heap.push(t, i);
        }
        let mut popped = 0u64;
        while let Some((wt, wi)) = wheel.pop() {
            let (ht, hi) = heap.pop().expect("heap ran dry first");
            assert_eq!((wt, wi), (ht, hi), "divergence after {popped} pops");
            popped += 1;
            // Keep some churn going mid-drain.
            if popped.is_multiple_of(7) && popped < 1_000 {
                let t = wheel.now() + SimDuration::from_micros(1 + rng.gen_range(1u64 << 37));
                let tag = 1_000_000 + popped;
                wheel.push(t, tag);
                heap.push(t, tag);
            }
        }
        assert!(heap.pop().is_none());
        assert_eq!(wheel.len(), 0);
    }

    /// Steady-state churn with realistic inter-event gaps: the wheel and
    /// the heap pop byte-identical `(time, payload)` sequences.
    #[test]
    fn wheel_matches_heap_under_churn() {
        let mut rng = Xoshiro256StarStar::seeded(0x5EED_0001);
        let [mut wheel, mut heap] = both();
        for i in 0..200u64 {
            let t = SimTime(rng.gen_range(2_000_000));
            wheel.push(t, i);
            heap.push(t, i);
        }
        for step in 0..20_000u64 {
            let (wt, wi) = wheel.pop().expect("wheel empty");
            let (ht, hi) = heap.pop().expect("heap empty");
            assert_eq!((wt, wi), (ht, hi), "divergence at step {step}");
            // 1-in-8 chance of a same-time push (tie churn), otherwise a
            // spread of near-future gaps like the grid engine produces.
            let gap = match rng.gen_index(8) {
                0 => 0,
                1..=4 => 100 + rng.gen_range(10_000),
                5 | 6 => 1 + rng.gen_range(1_000_000),
                _ => 1 + rng.gen_range(100_000_000),
            };
            let t = wheel.now() + SimDuration::from_micros(gap);
            wheel.push(t, step);
            heap.push(t, step);
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.now(), heap.now());
        }
    }
}
