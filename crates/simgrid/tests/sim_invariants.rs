//! Randomized whole-engine invariants: arbitrary small grids, layouts and
//! perturbation scripts must always terminate, conserve tasks, and produce
//! sane metrics. Driven by the in-repo fixed-seed RNG so every case is
//! reproducible offline.

use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::barnes_hut_profile;
use sagrid_simgrid::{AdaptMode, GridSim, SimConfig, StealPolicy, TimingConfig};
use sagrid_simnet::{Injection, InjectionSchedule, ScheduledInjection};

const CASES: u64 = 48;

#[derive(Debug, Clone)]
struct Scenario {
    clusters: usize,
    nodes_per_cluster: usize,
    initial_per_cluster: usize,
    iterations: usize,
    mode: u8,
    steal: u8,
    hierarchical: bool,
    feedback: bool,
    injections: Vec<(u64, u8, f64)>,
    seed: u64,
}

fn random_scenario(rng: &mut impl Rng64) -> Scenario {
    let clusters = 2 + rng.gen_index(2);
    let nodes_per_cluster = 2 + rng.gen_index(4);
    let initial_per_cluster = (1 + rng.gen_index(4)).min(nodes_per_cluster);
    let injections = (0..rng.gen_index(3))
        .map(|_| {
            (
                rng.gen_range(60),
                rng.gen_range(4) as u8,
                1.0 + 9.0 * rng.gen_f64(),
            )
        })
        .collect();
    Scenario {
        clusters,
        nodes_per_cluster,
        initial_per_cluster,
        iterations: 2 + rng.gen_index(4),
        mode: rng.gen_range(3) as u8,
        steal: rng.gen_range(2) as u8,
        hierarchical: rng.gen_bool(0.5),
        feedback: rng.gen_bool(0.5),
        injections,
        seed: rng.next_u64(),
    }
}

fn build(s: &Scenario) -> SimConfig {
    let grid = GridConfig::uniform(s.clusters, s.nodes_per_cluster);
    let initial: Vec<(ClusterId, usize)> = (0..s.clusters)
        .map(|c| (ClusterId(c as u16), s.initial_per_cluster))
        .collect();
    let injections = InjectionSchedule::new(
        s.injections
            .iter()
            .map(|&(t, kind, factor)| {
                let cluster = ClusterId((t % s.clusters as u64) as u16);
                let injection = match kind {
                    0 => Injection::CpuLoad {
                        cluster,
                        count: None,
                        factor,
                    },
                    1 => Injection::UplinkBandwidth {
                        cluster,
                        bandwidth_bps: 50_000.0 * factor,
                    },
                    2 => Injection::CrashNodes { cluster, count: 1 },
                    _ => Injection::CpuLoad {
                        cluster,
                        count: Some(1),
                        factor: 1.0,
                    },
                };
                ScheduledInjection {
                    at: SimTime::from_secs(t),
                    injection,
                }
            })
            .collect(),
    );
    let n_initial: usize = initial.iter().map(|&(_, n)| n).sum();
    SimConfig {
        grid,
        policy: AdaptPolicy {
            monitoring_period: SimDuration::from_secs(20),
            // Never let random crashes plus shrink decisions empty the run.
            min_nodes: 1,
            ..AdaptPolicy::default()
        },
        initial_layout: initial,
        workload: barnes_hut_profile(s.iterations, n_initial.max(2), 3.0, s.seed),
        injections,
        mode: match s.mode {
            0 => AdaptMode::NoAdapt,
            1 => AdaptMode::MonitorOnly,
            _ => AdaptMode::Adapt,
        },
        steal_policy: if s.steal == 0 {
            StealPolicy::ClusterAware
        } else {
            StealPolicy::RandomGlobal
        },
        timing: TimingConfig {
            benchmark_work: SimDuration::from_millis(500),
            max_virtual_time: SimDuration::from_secs(3600),
            ..TimingConfig::default()
        },
        record_trace: false,
        feedback_tuning: s.feedback,
        hierarchical_coordinator: s.hierarchical,
        queue_backend: Default::default(),
        seed: s.seed,
    }
}

/// Every randomized configuration terminates with all iterations accounted
/// for (no lost or duplicated tasks), bounded metrics, and a consistent
/// node-count timeline.
#[test]
fn random_scenarios_terminate_and_conserve() {
    let mut generated = 0u64;
    let mut rng = Xoshiro256StarStar::seeded(0x519A_0001);
    while generated < CASES {
        let s = random_scenario(&mut rng);
        // Crashing the last node of the computation would legitimately
        // stall (nobody left to adopt work and no adaptation to add more
        // in NoAdapt/MonitorOnly). Keep at least one safe cluster: skip
        // crash injections when only one node per cluster was placed.
        if s.initial_per_cluster < 2 && s.injections.iter().any(|&(_, k, _)| k == 2) {
            continue;
        }
        generated += 1;
        let cfg = build(&s);
        let r = GridSim::run(cfg);
        assert!(!r.timed_out, "timed out: {s:?}");
        assert_eq!(r.iteration_durations.len(), s.iterations, "{s:?}");
        for d in &r.iteration_durations {
            assert!(d.0 > 0, "zero-length iteration: {s:?}");
        }
        for &(_, e) in &r.efficiency_timeline {
            assert!((0.0..=1.0).contains(&e), "wa_eff {e} out of range: {s:?}");
        }
        // Node-count timeline is consistent: starts at 0-going-up, never
        // negative jumps below zero, ends at final count.
        let mut last = 0usize;
        for &(_, n) in &r.node_count_timeline {
            assert!(n <= s.clusters * s.nodes_per_cluster, "{s:?}");
            last = n;
        }
        assert_eq!(last, r.final_node_count(), "{s:?}");
        // Aggregate accounting is non-degenerate: somebody did the work.
        assert!(r.aggregate.busy.0 > 0, "{s:?}");
        // The peer cache serves every steal attempt.
        assert_eq!(r.peer_cache_hits, r.steal_attempts, "{s:?}");
    }
}

/// Determinism holds across the entire randomized configuration space.
#[test]
fn random_scenarios_are_deterministic() {
    let mut rng = Xoshiro256StarStar::seeded(0x519A_0002);
    for _ in 0..CASES {
        let s = random_scenario(&mut rng);
        let a = GridSim::run(build(&s));
        let b = GridSim::run(build(&s));
        assert_eq!(a.iteration_durations, b.iteration_durations, "{s:?}");
        assert_eq!(a.events_processed, b.events_processed, "{s:?}");
        assert_eq!(a.node_count_timeline, b.node_count_timeline, "{s:?}");
    }
}
