//! Randomized whole-engine invariants: arbitrary small grids, layouts and
//! perturbation scripts must always terminate, conserve tasks, and produce
//! sane metrics.

use proptest::prelude::*;
use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::barnes_hut_profile;
use sagrid_simgrid::{AdaptMode, GridSim, SimConfig, StealPolicy, TimingConfig};
use sagrid_simnet::{Injection, InjectionSchedule, ScheduledInjection};

#[derive(Debug, Clone)]
struct Scenario {
    clusters: usize,
    nodes_per_cluster: usize,
    initial_per_cluster: usize,
    iterations: usize,
    mode: u8,
    steal: u8,
    hierarchical: bool,
    feedback: bool,
    injections: Vec<(u64, u8, f64)>,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2usize..4,                 // clusters
        2usize..6,                 // nodes per cluster
        1usize..5,                 // initial per cluster
        2usize..6,                 // iterations
        0u8..3,                    // mode
        0u8..2,                    // steal policy
        any::<bool>(),             // hierarchical coordinator
        any::<bool>(),             // feedback tuning
        prop::collection::vec((0u64..60, 0u8..4, 1.0f64..10.0), 0..3),
        any::<u64>(),
    )
        .prop_map(
            |(clusters, npc, init, iterations, mode, steal, hierarchical, feedback, injections, seed)| {
                Scenario {
                    clusters,
                    nodes_per_cluster: npc,
                    initial_per_cluster: init.min(npc),
                    iterations,
                    mode,
                    steal,
                    hierarchical,
                    feedback,
                    injections,
                    seed,
                }
            },
        )
}

fn build(s: &Scenario) -> SimConfig {
    let grid = GridConfig::uniform(s.clusters, s.nodes_per_cluster);
    let initial: Vec<(ClusterId, usize)> = (0..s.clusters)
        .map(|c| (ClusterId(c as u16), s.initial_per_cluster))
        .collect();
    let injections = InjectionSchedule::new(
        s.injections
            .iter()
            .map(|&(t, kind, factor)| {
                let cluster = ClusterId((t % s.clusters as u64) as u16);
                let injection = match kind {
                    0 => Injection::CpuLoad {
                        cluster,
                        count: None,
                        factor,
                    },
                    1 => Injection::UplinkBandwidth {
                        cluster,
                        bandwidth_bps: 50_000.0 * factor,
                    },
                    2 => Injection::CrashNodes { cluster, count: 1 },
                    _ => Injection::CpuLoad {
                        cluster,
                        count: Some(1),
                        factor: 1.0,
                    },
                };
                ScheduledInjection {
                    at: SimTime::from_secs(t),
                    injection,
                }
            })
            .collect(),
    );
    let n_initial: usize = initial.iter().map(|&(_, n)| n).sum();
    SimConfig {
        grid,
        policy: AdaptPolicy {
            monitoring_period: SimDuration::from_secs(20),
            // Never let random crashes plus shrink decisions empty the run.
            min_nodes: 1,
            ..AdaptPolicy::default()
        },
        initial_layout: initial,
        workload: barnes_hut_profile(s.iterations, n_initial.max(2), 3.0, s.seed),
        injections,
        mode: match s.mode {
            0 => AdaptMode::NoAdapt,
            1 => AdaptMode::MonitorOnly,
            _ => AdaptMode::Adapt,
        },
        steal_policy: if s.steal == 0 {
            StealPolicy::ClusterAware
        } else {
            StealPolicy::RandomGlobal
        },
        timing: TimingConfig {
            benchmark_work: SimDuration::from_millis(500),
            max_virtual_time: SimDuration::from_secs(3600),
            ..TimingConfig::default()
        },
        record_trace: false,
        feedback_tuning: s.feedback,
        hierarchical_coordinator: s.hierarchical,
        seed: s.seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every randomized configuration terminates with all iterations
    /// accounted for (no lost or duplicated tasks), bounded metrics, and a
    /// consistent node-count timeline.
    #[test]
    fn random_scenarios_terminate_and_conserve(s in arb_scenario()) {
        // Crashing the last node of the computation would legitimately
        // stall (nobody left to adopt work and no adaptation to add more
        // in NoAdapt/MonitorOnly). Keep at least one safe cluster: skip
        // crash injections when only one node per cluster was placed.
        prop_assume!(
            s.initial_per_cluster >= 2
                || !s.injections.iter().any(|&(_, k, _)| k == 2)
        );
        let cfg = build(&s);
        let r = GridSim::run(cfg);
        prop_assert!(!r.timed_out, "timed out: {s:?}");
        prop_assert_eq!(r.iteration_durations.len(), s.iterations);
        for d in &r.iteration_durations {
            prop_assert!(d.0 > 0, "zero-length iteration");
        }
        for &(_, e) in &r.efficiency_timeline {
            prop_assert!((0.0..=1.0).contains(&e), "wa_eff {e} out of range");
        }
        // Node-count timeline is consistent: starts at 0-going-up, never
        // negative jumps below zero, ends at final count.
        let mut last = 0usize;
        for &(_, n) in &r.node_count_timeline {
            prop_assert!(n <= s.clusters * s.nodes_per_cluster);
            last = n;
        }
        prop_assert_eq!(last, r.final_node_count());
        // Aggregate accounting is non-degenerate: somebody did the work.
        prop_assert!(r.aggregate.busy.0 > 0);
    }

    /// Determinism holds across the entire randomized configuration space.
    #[test]
    fn random_scenarios_are_deterministic(s in arb_scenario()) {
        let a = GridSim::run(build(&s));
        let b = GridSim::run(build(&s));
        prop_assert_eq!(a.iteration_durations, b.iteration_durations);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.node_count_timeline, b.node_count_timeline);
    }
}
