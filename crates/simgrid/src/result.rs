//! Results of one simulated run.

use crate::trace::NodeTrace;
use sagrid_adapt::DecisionLogEntry;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::MetricsReport;
use sagrid_core::stats::OverheadBreakdown;
use sagrid_core::time::{SimDuration, SimTime};

/// Everything the experiment harness needs to draw the paper's figures.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total application runtime (start of iteration 0 to end of the last).
    pub total_runtime: SimDuration,
    /// Duration of each iteration — the y-axis of Figures 3–7.
    pub iteration_durations: Vec<SimDuration>,
    /// `(time, node count)` steps: changes whenever nodes join/leave/crash.
    pub node_count_timeline: Vec<(SimTime, usize)>,
    /// Coordinator decision log (empty for `AdaptMode::NoAdapt`).
    pub decisions: Vec<DecisionLogEntry>,
    /// Weighted average efficiency samples `(time, value)` at each
    /// coordinator tick.
    pub efficiency_timeline: Vec<(SimTime, f64)>,
    /// Per-cluster average inter-cluster overhead at each coordinator tick —
    /// the signal behind the exceptional-cluster removal rule.
    pub cluster_ic_timeline: Vec<(SimTime, Vec<(ClusterId, f64)>)>,
    /// Aggregate time accounting over all nodes and periods (includes the
    /// final partial period), for overhead analysis (scenario 1).
    pub aggregate: OverheadBreakdown,
    /// Number of discrete events processed (kernel throughput bench).
    pub events_processed: u64,
    /// Steal requests sent over the simulated network (sync and wide).
    pub steal_attempts: u64,
    /// Victim selections served by the engine's incremental peer cache
    /// (one per steal attempt; kept separate so the ratio to
    /// `steal_attempts` stays an invariant check for the cache path).
    pub peer_cache_hits: u64,
    /// True when the run ended because it hit the virtual-time cap rather
    /// than finishing its workload.
    pub timed_out: bool,
    /// Per-node activity traces, present when the run enabled
    /// [`crate::SimConfig::record_trace`]. Crashed nodes keep the trace
    /// recorded up to their crash.
    pub activity_traces: Vec<(NodeId, NodeTrace)>,
    /// Snapshot of the metrics registry at the end of the run — counters,
    /// gauges, histograms and the structured event stream. `None` when the
    /// run was started with metrics disabled (the default), so the default
    /// output stays byte-identical to pre-metrics builds.
    pub metrics: Option<MetricsReport>,
}

impl RunResult {
    /// Mean iteration duration in seconds.
    pub fn mean_iteration_secs(&self) -> f64 {
        if self.iteration_durations.is_empty() {
            return 0.0;
        }
        self.iteration_durations
            .iter()
            .map(|d| d.as_secs_f64())
            .sum::<f64>()
            / self.iteration_durations.len() as f64
    }

    /// Largest iteration duration in seconds.
    pub fn max_iteration_secs(&self) -> f64 {
        self.iteration_durations
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Population standard deviation of iteration durations (seconds) —
    /// the paper repeatedly points at iteration-time *variability*.
    pub fn iteration_stddev_secs(&self) -> f64 {
        let n = self.iteration_durations.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean_iteration_secs();
        let var = self
            .iteration_durations
            .iter()
            .map(|d| {
                let x = d.as_secs_f64() - mean;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Fraction of all accounted node-time spent benchmarking — the paper's
    /// scenario-1 observation that "almost all overhead comes from
    /// benchmarking".
    pub fn benchmark_fraction(&self) -> f64 {
        self.aggregate.benchmark.fraction_of(self.aggregate.total())
    }

    /// Final node count at the end of the run.
    pub fn final_node_count(&self) -> usize {
        self.node_count_timeline.last().map_or(0, |&(_, n)| n)
    }

    /// Node count just before time `t`.
    pub fn node_count_at(&self, t: SimTime) -> usize {
        self.node_count_timeline
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .last()
            .map_or(0, |&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            total_runtime: SimDuration::from_secs(100),
            iteration_durations: vec![
                SimDuration::from_secs(10),
                SimDuration::from_secs(20),
                SimDuration::from_secs(30),
            ],
            node_count_timeline: vec![
                (SimTime::ZERO, 8),
                (SimTime::from_secs(50), 16),
                (SimTime::from_secs(80), 12),
            ],
            decisions: Vec::new(),
            efficiency_timeline: Vec::new(),
            cluster_ic_timeline: Vec::new(),
            aggregate: OverheadBreakdown {
                busy: SimDuration::from_secs(90),
                benchmark: SimDuration::from_secs(10),
                ..Default::default()
            },
            events_processed: 0,
            steal_attempts: 0,
            peer_cache_hits: 0,
            timed_out: false,
            activity_traces: Vec::new(),
            metrics: None,
        }
    }

    #[test]
    fn iteration_statistics() {
        let r = result();
        assert!((r.mean_iteration_secs() - 20.0).abs() < 1e-9);
        assert!((r.max_iteration_secs() - 30.0).abs() < 1e-9);
        let expected_sd = (200.0_f64 / 3.0).sqrt();
        assert!((r.iteration_stddev_secs() - expected_sd).abs() < 1e-9);
    }

    #[test]
    fn benchmark_fraction_from_aggregate() {
        let r = result();
        assert!((r.benchmark_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn node_count_lookup() {
        let r = result();
        assert_eq!(r.node_count_at(SimTime::ZERO), 8);
        assert_eq!(r.node_count_at(SimTime::from_secs(49)), 8);
        assert_eq!(r.node_count_at(SimTime::from_secs(50)), 16);
        assert_eq!(r.node_count_at(SimTime::from_secs(1000)), 12);
        assert_eq!(r.final_node_count(), 12);
    }

    #[test]
    fn empty_iterations_are_safe() {
        let mut r = result();
        r.iteration_durations.clear();
        assert_eq!(r.mean_iteration_secs(), 0.0);
        assert_eq!(r.iteration_stddev_secs(), 0.0);
        assert_eq!(r.max_iteration_secs(), 0.0);
    }
}
