//! The discrete-event grid engine.
//!
//! Wires together the event kernel, the network model, the registry, the
//! resource pool and the adaptation coordinator, and executes an iterative
//! divide-and-conquer workload with cluster-aware random work stealing.
//!
//! The engine is the DES twin of the threaded `sagrid-runtime`: the steal
//! protocol, the malleability flow (grant → join → steal → leave signal →
//! queue hand-off → release) and the fault-tolerance flow (crash → detect →
//! re-inject orphaned tasks) follow the same design, but time is virtual and
//! every run is deterministic.

use crate::batch::{BatchId, Batches};
use crate::config::{SimConfig, StealPolicy};
use crate::node::{NodeActivity, SimNode};
use crate::peers::PeerCache;
use crate::result::RunResult;
use sagrid_adapt::coordinator::{Coordinator, Decision, LearnedRequirements};
use sagrid_adapt::feedback::{dominant_term, DominantTerm, FeedbackTuner};
use sagrid_adapt::hierarchy::HierarchicalCoordinator;
use sagrid_adapt::{BadnessCoefficients, BandwidthEstimator, SpeedTracker};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::metrics::{Counter, Gauge, Histogram, MetricEvent, Metrics, Value};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::stats::OverheadBreakdown;
use sagrid_core::time::{SimDuration, SimTime};
use sagrid_core::workload::TaskTree;
use sagrid_registry::{Membership, RegistryConfig};
use sagrid_sched::{AllocPolicy, NodeGrant, Requirements, ResourcePool};
use sagrid_simnet::{EventQueue, Injection, Network, QueueBackend};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Engine events.
///
/// The enum is sized by its largest variant and the event queue moves
/// millions of these, so the hot variants are kept lean on purpose:
///
/// * steal tokens are plain `u64`s with `0` meaning "asynchronous (wide)
///   steal, no token" — real tokens start at 1 ([`SimNode::next_steal_token`]
///   pre-increments — so the niche is free;
/// * a stolen task travels as `(task, task_origin)` with
///   `task == NO_TASK` for an empty reply, instead of an `Option` tuple;
/// * message sizes are `u32` (a steal payload larger than 4 GiB is not a
///   message, it is a migration);
/// * batch-carrying rare events (leave hand-offs, crash recovery) embed a
///   4-byte [`BatchId`] into pooled [`Batches`] instead of a 24-byte `Vec`.
#[derive(Clone, Debug)]
enum Event {
    /// A granted node finishes its startup and joins the computation.
    Activate { node: NodeId, base_speed: f64 },
    /// A node finishes the task it was computing.
    TaskComplete { node: NodeId },
    /// A node finishes a benchmark run.
    BenchmarkDone { node: NodeId },
    /// A steal request arrives at the victim.
    StealRequest {
        thief: NodeId,
        victim: NodeId,
        /// Synchronous-steal token; `0` = asynchronous wide steal.
        token: u64,
        wide: bool,
    },
    /// A steal reply arrives back at the thief.
    StealReply {
        thief: NodeId,
        /// Stolen task arena index, or [`NO_TASK`] for an empty reply.
        task: u32,
        /// Origin (spawner) of the stolen task; meaningless when empty.
        task_origin: NodeId,
        /// Token echoed from the request; `0` = asynchronous wide steal.
        token: u64,
        wide: bool,
        /// Provenance for the bandwidth estimator (paper §3.3: bandwidth
        /// is estimated from measured data-transfer times).
        from_cluster: ClusterId,
        bytes: u32,
        sent_at: SimTime,
    },
    /// A completed task's result arrives back at its spawner's cluster.
    ResultArrive {
        from_cluster: ClusterId,
        to_cluster: ClusterId,
        bytes: u32,
        sent_at: SimTime,
    },
    /// A blocking result send has drained the sender's uplink.
    SendDone { node: NodeId },
    /// A leaving node's queued tasks arrive at a peer.
    TaskTransfer { to: NodeId, tasks: BatchId },
    /// An out-of-work node retries stealing.
    RetrySteal { node: NodeId, generation: u64 },
    /// The adaptation coordinator's periodic evaluation.
    CoordinatorTick,
    /// Scenario perturbations due now.
    ApplyInjections,
    /// The runtime noticed a crash: clean up and re-inject orphaned tasks.
    /// Scheduled `fault_detection_delay` after the injection; until it
    /// fires the victims are only *suspected*, so the coordinator holds
    /// fire on shrink decisions instead of reacting to their silence.
    RecoverCrash {
        victims: BatchId,
        tasks: BatchId,
        cluster: Option<ClusterId>,
    },
}

/// Sentinel for "no task" in [`Event::StealReply::task`].
const NO_TASK: u32 = u32::MAX;

/// Flat or hierarchical coordinator, behind one dispatching façade so the
/// engine is agnostic (paper §7: the hierarchy is a scalability fix, not a
/// behaviour change).
enum Coord {
    Flat(Coordinator),
    Hierarchical(HierarchicalCoordinator),
}

impl Coord {
    fn record_report(&mut self, report: sagrid_core::stats::MonitoringReport) {
        match self {
            Coord::Flat(c) => c.record_report(report),
            Coord::Hierarchical(h) => h.record_report(report),
        }
    }

    fn node_gone(&mut self, node: NodeId) {
        match self {
            Coord::Flat(c) => c.node_gone(node),
            Coord::Hierarchical(h) => h.node_gone(node),
        }
    }

    fn observe_uplink(&mut self, cluster: ClusterId, bps: f64) {
        match self {
            Coord::Flat(c) => c.observe_uplink(cluster, bps),
            Coord::Hierarchical(h) => h.observe_uplink(cluster, bps),
        }
    }

    fn evaluate(&mut self, now: SimTime, fastest: Option<f64>) -> Decision {
        match self {
            Coord::Flat(c) => c.evaluate(now, fastest),
            Coord::Hierarchical(h) => h.evaluate(now, fastest),
        }
    }

    fn main(&self) -> &Coordinator {
        match self {
            Coord::Flat(c) => c,
            Coord::Hierarchical(h) => h.main(),
        }
    }

    fn set_coefficients(&mut self, coefficients: BadnessCoefficients) {
        match self {
            Coord::Flat(c) => c.set_coefficients(coefficients),
            Coord::Hierarchical(h) => h.set_coefficients(coefficients),
        }
    }

    fn record_crashed(&mut self, nodes: &[NodeId], cluster: Option<ClusterId>) {
        match self {
            Coord::Flat(c) => c.record_crashed(nodes, cluster),
            Coord::Hierarchical(h) => h.record_crashed(nodes, cluster),
        }
    }

    fn mark_suspects(&mut self, nodes: &[NodeId]) {
        match self {
            Coord::Flat(c) => c.mark_suspects(nodes),
            Coord::Hierarchical(h) => h.mark_suspects(nodes),
        }
    }
}

/// Pre-resolved registry handles for the engine's membership- and
/// decision-rate instrumentation. Per-steal statistics are deliberately
/// *not* here: the engine is single-threaded, so those are accumulated as
/// plain integers on the engine itself and folded into the registry once
/// at teardown — the steal hot path pays no atomics even with metrics on.
struct EngineMetrics {
    joins: Arc<Counter>,
    leaves: Arc<Counter>,
    crashes: Arc<Counter>,
    task_transfers: Arc<Counter>,
    injections: Arc<Counter>,
    decisions: Arc<Counter>,
    suspects_marked: Arc<Counter>,
    suspects_cleared: Arc<Counter>,
    holdfire_decisions: Arc<Counter>,
    nodes_alive: Arc<Gauge>,
    iteration_secs: Arc<Histogram>,
}

impl EngineMetrics {
    fn resolve(metrics: &Metrics) -> Option<Self> {
        if !metrics.is_enabled() {
            return None;
        }
        let c = |name: &str| metrics.counter(name).expect("registry is enabled");
        Some(Self {
            joins: c("des.node_joins"),
            leaves: c("des.node_leaves"),
            crashes: c("des.node_crashes"),
            task_transfers: c("des.task_transfers"),
            injections: c("des.injections"),
            decisions: c("des.decisions"),
            // Same names as the process-mode coordinatord, so scenario
            // assertions work against either twin's JSONL.
            suspects_marked: c("adapt.suspect.marked"),
            suspects_cleared: c("adapt.suspect.cleared"),
            holdfire_decisions: c("adapt.holdfire.decisions"),
            nodes_alive: metrics
                .gauge("des.nodes_alive")
                .expect("registry is enabled"),
            iteration_secs: metrics
                .histogram("des.iteration_secs", &[30, 60, 120, 240, 480, 960])
                .expect("registry is enabled"),
        })
    }
}

/// The simulation engine. Construct with [`GridSim::new`], execute with
/// [`GridSim::run`].
///
/// ```
/// use sagrid_adapt::AdaptPolicy;
/// use sagrid_core::config::GridConfig;
/// use sagrid_core::ids::ClusterId;
/// use sagrid_core::workload::barnes_hut_profile;
/// use sagrid_simgrid::{AdaptMode, GridSim, SimConfig, StealPolicy, TimingConfig};
/// use sagrid_simnet::InjectionSchedule;
///
/// let cfg = SimConfig {
///     grid: GridConfig::uniform(2, 4),
///     policy: AdaptPolicy::default(),
///     initial_layout: vec![(ClusterId(0), 4), (ClusterId(1), 4)],
///     workload: barnes_hut_profile(3, 8, 4.0, 42),
///     injections: InjectionSchedule::empty(),
///     mode: AdaptMode::Adapt,
///     steal_policy: StealPolicy::ClusterAware,
///     timing: TimingConfig::default(),
///     record_trace: false,
///     feedback_tuning: false,
///     hierarchical_coordinator: false,
///     queue_backend: Default::default(),
///     seed: 42,
/// };
/// let result = GridSim::run(cfg);
/// assert_eq!(result.iteration_durations.len(), 3);
/// assert!(!result.timed_out);
/// ```
pub struct GridSim {
    cfg: SimConfig,
    queue: EventQueue<Event>,
    network: Network,
    pool: ResourcePool,
    registry: Membership,
    coordinator: Coord,
    speeds: SpeedTracker,
    bandwidth: BandwidthEstimator,
    /// §7 feedback control state: the tuner plus the pending observation
    /// `(dominant term of the last removal, efficiency at that decision)`.
    tuner: Option<FeedbackTuner>,
    pending_feedback: Option<(DominantTerm, f64)>,
    coefficients: BadnessCoefficients,
    rng: Xoshiro256StarStar,
    /// Dense node table indexed by `NodeId` (pool ids are cluster-major over
    /// the whole grid).
    nodes: Vec<Option<SimNode>>,
    /// Per-cluster alive-peer lists, maintained incrementally on
    /// join/leave/crash instead of rescanned per steal attempt.
    alive: PeerCache,
    /// Reusable id buffer for per-tick snapshots of the alive set.
    scratch_ids: Vec<NodeId>,
    /// Pooled task batches referenced by [`Event::TaskTransfer`] /
    /// [`Event::RecoverCrash`] (events stay 4 bytes wide per batch).
    task_batches: Batches<(u32, NodeId)>,
    /// Pooled crash-victim lists referenced by [`Event::RecoverCrash`].
    victim_batches: Batches<NodeId>,
    /// Retry-chain staleness guards, indexed by node.
    retry_gen: Vec<u64>,
    /// Engine-side benchmark pacing: last benchmark start per node.
    last_bench_start: Vec<Option<SimTime>>,
    /// Load factor observed at each node's last benchmark (for the
    /// load-aware benchmarking extension).
    last_bench_load: Vec<Option<f64>>,
    /// Current iteration index and bookkeeping.
    iter: usize,
    tasks_remaining: usize,
    iteration_started: SimTime,
    /// Tasks orphaned while no node was alive to adopt them (`None` origin
    /// means "re-home to whichever node adopts it", used for iteration
    /// roots).
    orphans: Vec<(u32, Option<NodeId>)>,
    finished: bool,
    // --- results ---
    iteration_durations: Vec<SimDuration>,
    node_count_timeline: Vec<(SimTime, usize)>,
    efficiency_timeline: Vec<(SimTime, f64)>,
    cluster_ic_timeline: Vec<(SimTime, Vec<(ClusterId, f64)>)>,
    aggregate: OverheadBreakdown,
    timed_out: bool,
    /// Steal requests sent (sync and wide).
    steal_attempts: u64,
    /// Wide-area (inter-cluster) steal requests sent.
    wide_steal_attempts: u64,
    /// Steal requests per victim cluster, folded into the registry as
    /// `des.steals.to_cluster.<n>` at teardown.
    steals_by_cluster: Vec<u64>,
    /// Victim selections served by the incremental peer cache.
    peer_cache_hits: u64,
    /// The metrics registry handle (disabled by default; see
    /// [`GridSim::try_run_with_metrics`]).
    metrics: Metrics,
    /// Pre-resolved instrument handles, present only when enabled.
    em: Option<EngineMetrics>,
}

impl GridSim {
    /// Builds the engine; panics on an invalid configuration. Thin wrapper
    /// over [`GridSim::try_new`] for callers that construct configurations
    /// statically.
    pub fn new(cfg: SimConfig) -> Self {
        Self::try_new(cfg).expect("invalid simulation configuration")
    }

    /// Builds the engine, reporting an invalid configuration as an error
    /// instead of panicking — the right entry point when the configuration
    /// comes from user input (CLI flags, sweep generators).
    pub fn try_new(cfg: SimConfig) -> Result<Self, String> {
        Self::try_new_with_metrics(cfg, Metrics::disabled())
    }

    /// Fallible constructor wiring a metrics registry through every layer
    /// the engine owns (scheduler pool included). Pass
    /// [`Metrics::disabled`] for zero-overhead operation.
    pub fn try_new_with_metrics(cfg: SimConfig, metrics: Metrics) -> Result<Self, String> {
        cfg.validate()?;
        let network = Network::new(&cfg.grid);
        let mut pool = ResourcePool::new(&cfg.grid);
        pool.set_metrics(&metrics);
        let coordinator = if cfg.hierarchical_coordinator {
            Coord::Hierarchical(HierarchicalCoordinator::new(cfg.policy))
        } else {
            Coord::Flat(Coordinator::new(cfg.policy))
        };
        let rng = Xoshiro256StarStar::seeded(cfg.seed);
        let total = cfg.grid.total_nodes();
        let tuner = cfg
            .feedback_tuning
            .then(|| FeedbackTuner::new(cfg.policy.coefficients));
        let em = EngineMetrics::resolve(&metrics);
        Ok(Self {
            network,
            pool,
            registry: Membership::new(RegistryConfig::default()),
            coordinator,
            speeds: SpeedTracker::new(),
            bandwidth: BandwidthEstimator::default(),
            tuner,
            pending_feedback: None,
            coefficients: cfg.policy.coefficients,
            rng,
            nodes: (0..total).map(|_| None).collect(),
            alive: PeerCache::new(cfg.grid.clusters.len(), total),
            scratch_ids: Vec::new(),
            task_batches: Batches::default(),
            victim_batches: Batches::default(),
            retry_gen: vec![0; total],
            last_bench_start: vec![None; total],
            last_bench_load: vec![None; total],
            iter: 0,
            tasks_remaining: 0,
            iteration_started: SimTime::ZERO,
            orphans: Vec::new(),
            finished: false,
            iteration_durations: Vec::new(),
            node_count_timeline: Vec::new(),
            efficiency_timeline: Vec::new(),
            cluster_ic_timeline: Vec::new(),
            aggregate: OverheadBreakdown::default(),
            timed_out: false,
            steal_attempts: 0,
            wide_steal_attempts: 0,
            steals_by_cluster: vec![0; cfg.grid.clusters.len()],
            peer_cache_hits: 0,
            metrics,
            em,
            queue: EventQueue::with_backend(cfg.queue_backend.unwrap_or({
                if total >= crate::config::AUTO_WHEEL_NODES {
                    QueueBackend::Wheel
                } else {
                    QueueBackend::Heap
                }
            })),
            cfg,
        })
    }

    /// Runs the simulation to completion and returns the results. Panics
    /// on an invalid configuration (see [`GridSim::try_run`]).
    pub fn run(cfg: SimConfig) -> RunResult {
        Self::try_run(cfg).expect("invalid simulation configuration")
    }

    /// Runs the simulation to completion, reporting configuration errors
    /// instead of panicking.
    pub fn try_run(cfg: SimConfig) -> Result<RunResult, String> {
        Self::try_run_with_metrics(cfg, Metrics::disabled())
    }

    /// Runs with a live metrics registry: counters/gauges/histograms and
    /// structured events (injections, crashes, joins/leaves, decisions with
    /// full provenance) are recorded into `metrics` and snapshotted into
    /// [`RunResult::metrics`]. The simulated run itself is bit-identical to
    /// a metrics-disabled run.
    pub fn try_run_with_metrics(cfg: SimConfig, metrics: Metrics) -> Result<RunResult, String> {
        let mut sim = Self::try_new_with_metrics(cfg, metrics)?;
        sim.start();
        let cap = SimTime::ZERO + sim.cfg.timing.max_virtual_time;
        while !sim.finished {
            let Some((now, ev)) = sim.queue.pop() else {
                break;
            };
            if now > cap {
                sim.timed_out = true;
                break;
            }
            sim.handle(now, ev);
        }
        Ok(sim.into_result())
    }

    // ------------------------------------------------------------------
    // Setup
    // ------------------------------------------------------------------

    fn start(&mut self) {
        let grants = self.pool.allocate_initial(&self.cfg.initial_layout);
        for g in grants {
            // Initial nodes are already provisioned: activate at t=0.
            self.queue.push(
                SimTime::ZERO,
                Event::Activate {
                    node: g.node,
                    base_speed: g.base_speed,
                },
            );
        }
        // First iteration's root task: handed to the first activated node
        // via the orphan buffer (drained on activation).
        self.tasks_remaining = self.cur_tree().len();
        self.iteration_started = SimTime::ZERO;
        self.orphans.push((0, None));
        // Injection times are known upfront (deduplicated: one wake-up per
        // distinct time, however many perturbations share it).
        let times: BTreeSet<SimTime> = self.cfg.injections.upcoming_times().collect();
        for t in times {
            self.queue.push(t, Event::ApplyInjections);
        }
        if self.cfg.mode.monitors() {
            let period = self.cfg.policy.monitoring_period;
            self.queue
                .push(SimTime::ZERO + period, Event::CoordinatorTick);
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn cur_tree(&self) -> &TaskTree {
        &self.cfg.workload.iterations[self.iter]
    }

    fn node(&self, id: NodeId) -> &SimNode {
        self.nodes[id.index()]
            .as_ref()
            .expect("node referenced before activation")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SimNode {
        self.nodes[id.index()]
            .as_mut()
            .expect("node referenced before activation")
    }

    fn record_node_count(&mut self, now: SimTime) {
        self.node_count_timeline.push((now, self.alive.len()));
        if let Some(em) = &self.em {
            em.nodes_alive.set(self.alive.len() as i64);
        }
    }

    /// Hands `tasks` to the lowest-id alive node (or stashes them if the
    /// computation momentarily has no nodes), waking it if it was waiting.
    fn adopt_tasks(&mut self, now: SimTime, tasks: Vec<(u32, NodeId)>) {
        if tasks.is_empty() {
            return;
        }
        let Some(target) = self.alive.lowest() else {
            self.orphans
                .extend(tasks.into_iter().map(|(t, o)| (t, Some(o))));
            return;
        };
        self.node_mut(target).deque.extend(tasks);
        if matches!(self.node(target).activity, NodeActivity::Waiting) {
            self.try_get_work(now, target);
        }
    }

    /// Hands an iteration root to the lowest-id alive node; the adopter
    /// becomes the task's origin (it plays the Barnes-Hut master).
    fn adopt_root(&mut self, now: SimTime, task: u32) {
        let Some(target) = self.alive.lowest() else {
            self.orphans.push((task, None));
            return;
        };
        self.node_mut(target).deque.push_back((task, target));
        if matches!(self.node(target).activity, NodeActivity::Waiting) {
            self.try_get_work(now, target);
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Activate { node, base_speed } => self.on_activate(now, node, base_speed),
            Event::TaskComplete { node } => self.on_task_complete(now, node),
            Event::BenchmarkDone { node } => self.on_benchmark_done(now, node),
            Event::StealRequest {
                thief,
                victim,
                token,
                wide,
            } => self.on_steal_request(now, thief, victim, token, wide),
            Event::StealReply {
                thief,
                task,
                task_origin,
                token,
                wide,
                from_cluster,
                bytes,
                sent_at,
            } => {
                if wide && task != NO_TASK {
                    // Measure the transfer: effective bandwidth as the
                    // application sees it, queueing included.
                    let elapsed = now.saturating_since(sent_at);
                    let thief_cluster = if self.alive.contains(thief) {
                        self.node(thief).cluster
                    } else {
                        self.pool.cluster_of(thief)
                    };
                    self.bandwidth
                        .observe(from_cluster, u64::from(bytes), elapsed);
                    self.bandwidth
                        .observe(thief_cluster, u64::from(bytes), elapsed);
                }
                let task = (task != NO_TASK).then_some((task, task_origin));
                self.on_steal_reply(now, thief, task, token, wide)
            }
            Event::ResultArrive {
                from_cluster,
                to_cluster,
                bytes,
                sent_at,
            } => {
                let elapsed = now.saturating_since(sent_at);
                self.bandwidth
                    .observe(from_cluster, u64::from(bytes), elapsed);
                self.bandwidth
                    .observe(to_cluster, u64::from(bytes), elapsed);
                self.on_result_arrive(now)
            }
            Event::SendDone { node } => self.on_send_done(now, node),
            Event::TaskTransfer { to, tasks } => {
                let tasks = self.task_batches.take(tasks);
                self.on_task_transfer(now, to, tasks)
            }
            Event::RetrySteal { node, generation } => self.on_retry(now, node, generation),
            Event::CoordinatorTick => self.on_coordinator_tick(now),
            Event::ApplyInjections => self.on_injections(now),
            Event::RecoverCrash {
                victims,
                tasks,
                cluster,
            } => {
                let victims = self.victim_batches.take(victims);
                let tasks = self.task_batches.take(tasks);
                self.on_recover(now, victims, tasks, cluster)
            }
        }
    }

    fn on_activate(&mut self, now: SimTime, id: NodeId, base_speed: f64) {
        if self.finished {
            return;
        }
        let cluster = self.pool.cluster_of(id);
        let mut node = SimNode::new(
            id,
            cluster,
            base_speed,
            now,
            self.cfg.policy.benchmark_overhead_budget,
            self.cfg.timing.benchmark_work,
        );
        if self.cfg.record_trace {
            node.trace = Some(crate::trace::NodeTrace::default());
        }
        // A node that left gracefully is released back to the pool and may
        // be granted again later (e.g. a grow request after a shrink); its
        // old incarnation — activity `Gone`, stats already merged into the
        // aggregate at leave time — is simply replaced. Activating a node
        // that is still alive would be a pool bookkeeping bug.
        let prev = self.nodes[id.index()].replace(node);
        assert!(
            prev.is_none_or(|p| matches!(p.activity, NodeActivity::Gone)),
            "node {id} activated while still alive"
        );
        self.alive.insert(id, cluster);
        self.registry.join(now, id, cluster);
        self.record_node_count(now);
        if let Some(em) = &self.em {
            em.joins.inc();
            self.metrics.emit(
                MetricEvent::new(now.0, "join")
                    .with("node", Value::U64(u64::from(id.0)))
                    .with("cluster", Value::U64(u64::from(cluster.0))),
            );
        }
        // Adopt any orphaned tasks (including iteration roots, which are
        // re-homed to the adopter).
        let orphans = std::mem::take(&mut self.orphans);
        self.node_mut(id)
            .deque
            .extend(orphans.into_iter().map(|(t, o)| (t, o.unwrap_or(id))));
        self.try_get_work(now, id);
    }

    // ------------------------------------------------------------------
    // The scheduling core
    // ------------------------------------------------------------------

    /// Central decision point: called whenever a node is free to choose its
    /// next activity.
    fn try_get_work(&mut self, now: SimTime, id: NodeId) {
        if !self.alive.contains(id) {
            return;
        }
        // Only a node at a scheduling point may pick new work. This guard is
        // what makes re-entrant wake-ups safe: e.g. a task completion that
        // ends an iteration hands the new root to the lowest-id node — which
        // may be the completing node itself, already restarted by
        // `adopt_tasks` by the time the completion handler resumes.
        if !matches!(self.node(id).activity, NodeActivity::Waiting) {
            return;
        }
        // Invalidate pending retry chains for this node.
        self.retry_gen[id.index()] += 1;

        if self.node(id).leave_requested {
            self.perform_leave(now, id);
            return;
        }

        // Benchmark when due (monitoring modes only): once per monitoring
        // period, additionally throttled by the overhead budget.
        if self.cfg.mode.monitors() && self.benchmark_due(now, id) {
            let dur = {
                let n = self.node(id);
                n.execution_time(self.cfg.timing.benchmark_work)
            };
            self.last_bench_start[id.index()] = Some(now);
            self.last_bench_load[id.index()] = Some(self.node(id).load_factor);
            let until = now + dur;
            self.node_mut(id)
                .transition(now, NodeActivity::Benchmarking { until });
            self.queue.push(until, Event::BenchmarkDone { node: id });
            return;
        }

        // Local work first.
        if let Some((task, origin)) = self.node_mut(id).deque.pop_back() {
            self.start_computing(now, id, task, origin);
            return;
        }

        // Out of local work: steal.
        self.steal_phase(now, id);
    }

    fn benchmark_due(&self, now: SimTime, id: NodeId) -> bool {
        let n = self.node(id);
        if !n.bench.should_run(now) {
            return false;
        }
        let due = match self.last_bench_start[id.index()] {
            None => true,
            Some(start) => {
                // "The benchmark is run 1-2 times per monitoring period"
                // (paper §5.1): pace at half a period, with the budget-based
                // throttle in `bench.should_run` as the backstop.
                let half = SimDuration(self.cfg.policy.monitoring_period.0 / 2);
                now.saturating_since(start) >= half
            }
        };
        if !due {
            return false;
        }
        // Load-aware extension (§3.2): skip the re-run when the node's
        // load monitor reports no change since the last benchmark.
        if self.cfg.policy.load_aware_benchmarking {
            if let Some(last_load) = self.last_bench_load[id.index()] {
                if (last_load - n.load_factor).abs() < 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    fn start_computing(&mut self, now: SimTime, id: NodeId, task: u32, origin: NodeId) {
        let work = self.cur_tree().node(task as usize).work;
        let dur = self.node(id).execution_time(work);
        let until = now + dur;
        self.node_mut(id).failed_attempts = 0;
        self.node_mut(id).consecutive_parks = 0;
        self.node_mut(id).transition(
            now,
            NodeActivity::Computing {
                task,
                origin,
                until,
            },
        );
        self.queue.push(until, Event::TaskComplete { node: id });
    }

    /// Issues steal attempts per the configured policy, or parks the node.
    ///
    /// Victim selection runs entirely on the incrementally maintained
    /// [`PeerCache`]: no candidate vector is materialized, and the single
    /// random draw per pick matches what indexing such a vector used to
    /// consume, so runs are bit-identical to the old scan-and-allocate code.
    fn steal_phase(&mut self, now: SimTime, id: NodeId) {
        let my_cluster = self.node(id).cluster;
        // CRS: keep one asynchronous wide-area steal outstanding whenever
        // the computation spans multiple clusters.
        if self.cfg.steal_policy == StealPolicy::ClusterAware && !self.node(id).wide_outstanding {
            if let Some(victim) = self.alive.pick_other_cluster(my_cluster, &mut self.rng) {
                self.peer_cache_hits += 1;
                self.node_mut(id).wide_outstanding = true;
                self.send_steal_request(now, id, victim, 0, true);
            }
        }

        // Synchronous attempt.
        let peer_count = match self.cfg.steal_policy {
            StealPolicy::ClusterAware => self.alive.in_cluster_peers(my_cluster),
            StealPolicy::RandomGlobal => self.alive.peers_anywhere(),
        };
        let burst = (peer_count as u32).clamp(1, 4);
        if peer_count > 0 && self.node(id).failed_attempts < burst {
            let victim = match self.cfg.steal_policy {
                StealPolicy::ClusterAware => {
                    self.alive.pick_in_cluster(id, my_cluster, &mut self.rng)
                }
                StealPolicy::RandomGlobal => {
                    self.alive.pick_anywhere(id, my_cluster, &mut self.rng)
                }
            }
            .expect("peer_count > 0 guarantees a victim");
            self.peer_cache_hits += 1;
            let wide = self.node(victim).cluster != my_cluster;
            let token = self.node_mut(id).next_steal_token();
            self.node_mut(id)
                .transition(now, NodeActivity::SyncSteal { token, wide });
            self.send_steal_request(now, id, victim, token, wide);
            return;
        }

        // Exhausted: park and retry later (a wide reply may also wake us).
        // Exponential back-off: a node that keeps coming up empty probes
        // less and less often (up to 64× the base back-off), so a starved
        // grid does not collapse under probe storms — the same reason real
        // work-stealing runtimes throttle idle thieves.
        self.node_mut(id).failed_attempts = 0;
        self.node_mut(id).consecutive_parks = (self.node(id).consecutive_parks + 1).min(6);
        self.node_mut(id).transition(now, NodeActivity::Waiting);
        let backoff = {
            let base = self.cfg.timing.idle_retry_backoff;
            let scaled = base.mul_f64(f64::from(1u32 << self.node(id).consecutive_parks));
            // Small deterministic jitter de-synchronizes retry storms.
            let jitter = SimDuration::from_micros(self.rng.gen_range(5_000));
            scaled + jitter
        };
        let generation = self.retry_gen[id.index()];
        self.queue.push(
            now + backoff,
            Event::RetrySteal {
                node: id,
                generation,
            },
        );
    }

    fn send_steal_request(
        &mut self,
        now: SimTime,
        thief: NodeId,
        victim: NodeId,
        token: u64,
        wide: bool,
    ) {
        self.steal_attempts += 1;
        self.wide_steal_attempts += wide as u64;
        let from = self.node(thief).cluster;
        let to = self.node(victim).cluster;
        self.steals_by_cluster[to.index()] += 1;
        let d = self
            .network
            .deliver(now, from, to, self.cfg.timing.steal_msg_bytes);
        self.queue.push(
            d.arrives_at,
            Event::StealRequest {
                thief,
                victim,
                token,
                wide,
            },
        );
    }

    fn on_steal_request(
        &mut self,
        now: SimTime,
        thief: NodeId,
        victim: NodeId,
        token: u64,
        wide: bool,
    ) {
        // A dead/left victim cannot answer; model the thief's timeout as an
        // empty reply over the same path.
        let (task, victim_cluster) = if self.alive.contains(victim) {
            let t = self.node_mut(victim).deque.pop_front();
            (t, self.node(victim).cluster)
        } else {
            (None, self.pool.cluster_of(victim))
        };
        let payload = match task {
            Some((t, _)) => {
                self.cfg.timing.steal_msg_bytes + self.cur_tree().node(t as usize).payload_bytes
            }
            None => self.cfg.timing.steal_msg_bytes,
        };
        // The thief may itself be gone by delivery time; the reply handler
        // re-injects the task in that case.
        let thief_cluster = if self.alive.contains(thief) {
            self.node(thief).cluster
        } else {
            self.pool.cluster_of(thief)
        };
        let d = self
            .network
            .deliver(now, victim_cluster, thief_cluster, payload);
        let (task, task_origin) = match task {
            Some((t, o)) => (t, o),
            None => (NO_TASK, thief),
        };
        self.queue.push(
            d.arrives_at,
            Event::StealReply {
                thief,
                task,
                task_origin,
                token,
                wide,
                from_cluster: victim_cluster,
                bytes: u32::try_from(payload).unwrap_or(u32::MAX),
                sent_at: now,
            },
        );
    }

    fn on_steal_reply(
        &mut self,
        now: SimTime,
        thief: NodeId,
        task: Option<(u32, NodeId)>,
        token: u64,
        wide: bool,
    ) {
        if !self.alive.contains(thief) {
            // The thief left or crashed while the reply was in flight; the
            // task must not be lost (Satin re-executes orphans).
            if let Some(t) = task {
                self.adopt_tasks(now, vec![t]);
            }
            return;
        }
        if wide && token == 0 {
            self.node_mut(thief).wide_outstanding = false;
        }
        // Real tokens start at 1, so an asynchronous reply (token 0) never
        // matches a node blocked on a synchronous steal.
        let awaited = matches!(
            self.node(thief).activity,
            NodeActivity::SyncSteal { token: t, .. } if t == token
        );
        if awaited {
            match task {
                Some((t, o)) => self.start_computing(now, thief, t, o),
                None => {
                    // Attribute the failed steal's wait, then rejoin the
                    // scheduling loop from the Waiting state.
                    self.node_mut(thief).transition(now, NodeActivity::Waiting);
                    self.node_mut(thief).failed_attempts += 1;
                    self.try_get_work(now, thief);
                }
            }
            return;
        }
        // Asynchronous (wide) reply, or a reply that raced a state change.
        match task {
            Some(t) => {
                if matches!(self.node(thief).activity, NodeActivity::Waiting) {
                    // The node was starved and this transfer fed it: the
                    // wait was (inter-cluster) communication, not idleness.
                    self.node_mut(thief).absorb_wait_as_comm(now, !wide);
                    self.node_mut(thief).deque.push_back(t);
                    self.try_get_work(now, thief);
                } else {
                    self.node_mut(thief).deque.push_back(t);
                }
            }
            None => {
                // Empty wide reply: do NOT re-probe immediately — the
                // parked node's retry chain re-issues the wide steal at its
                // backed-off pace. Immediate re-probing congests exactly the
                // links that are already the bottleneck.
            }
        }
    }

    fn on_task_complete(&mut self, now: SimTime, id: NodeId) {
        if !self.alive.contains(id) {
            return; // crashed mid-compute; recovery re-injects the task
        }
        let NodeActivity::Computing {
            task,
            origin,
            until,
        } = self.node(id).activity
        else {
            return; // stale event (node was re-scheduled by recovery paths)
        };
        if until != now {
            return; // stale completion from a superseded schedule
        }
        // Spawn children into the local deque (LIFO execution order); the
        // executor becomes their origin. `children` is a plain index range,
        // so no intermediate vector is needed.
        let children = self.cur_tree().children(task as usize);
        {
            let n = self.node_mut(id);
            n.transition(now, NodeActivity::Waiting); // attribute busy time
            n.deque.extend(children.map(|c| (c as u32, id)));
        }
        // Return the result to the spawner. A result crossing cluster
        // boundaries is a real wide-area transfer (Satin ships the child's
        // result back to the parent's owner): the iteration barrier waits
        // for its delivery, and the *sender blocks* until the bytes drain
        // its uplink (TCP backpressure) — blocked-send time is exactly the
        // inter-cluster communication overhead the badness formulas key on.
        let origin_cluster = self.pool.cluster_of(origin);
        let exec_cluster = self.node(id).cluster;
        if origin_cluster != exec_cluster {
            let bytes =
                self.cfg.timing.steal_msg_bytes + self.cur_tree().node(task as usize).payload_bytes;
            let d = self
                .network
                .deliver(now, exec_cluster, origin_cluster, bytes);
            self.queue.push(
                d.arrives_at,
                Event::ResultArrive {
                    from_cluster: exec_cluster,
                    to_cluster: origin_cluster,
                    bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
                    sent_at: now,
                },
            );
            if d.src_clear_at > now {
                self.node_mut(id).transition(
                    now,
                    NodeActivity::Sending {
                        until: d.src_clear_at,
                        wide: true,
                    },
                );
                self.queue
                    .push(d.src_clear_at, Event::SendDone { node: id });
                return;
            }
        } else {
            self.task_accounted(now);
            if self.finished {
                return;
            }
        }
        self.try_get_work(now, id);
    }

    fn on_send_done(&mut self, now: SimTime, id: NodeId) {
        if !self.alive.contains(id) {
            return;
        }
        let NodeActivity::Sending { until, .. } = self.node(id).activity else {
            return;
        };
        if until != now {
            return;
        }
        self.node_mut(id).transition(now, NodeActivity::Waiting);
        self.try_get_work(now, id);
    }

    fn on_result_arrive(&mut self, now: SimTime) {
        if self.finished {
            return;
        }
        self.task_accounted(now);
    }

    /// One task fully done (executed *and* its result home): advance the
    /// iteration barrier.
    fn task_accounted(&mut self, now: SimTime) {
        self.tasks_remaining -= 1;
        if self.tasks_remaining == 0 {
            self.end_iteration(now);
        }
    }

    fn end_iteration(&mut self, now: SimTime) {
        let dur = now.saturating_since(self.iteration_started);
        self.iteration_durations.push(dur);
        if let Some(em) = &self.em {
            em.iteration_secs.record(dur.0 / 1_000_000);
        }
        self.iter += 1;
        if self.iter >= self.cfg.workload.iterations.len() {
            self.finished = true;
            return;
        }
        self.iteration_started = now;
        self.tasks_remaining = self.cur_tree().len();
        // The new root goes to the lowest-id alive node (the "master" in
        // the paper's Barnes-Hut: the tree is rebuilt and redistributed).
        self.adopt_root(now, 0);
    }

    fn on_benchmark_done(&mut self, now: SimTime, id: NodeId) {
        if !self.alive.contains(id) {
            return;
        }
        let NodeActivity::Benchmarking { until } = self.node(id).activity else {
            return;
        };
        if until != now {
            return;
        }
        let start = self.node(id).activity_since;
        let dur = now.saturating_since(start);
        {
            let n = self.node_mut(id);
            n.transition(now, NodeActivity::Waiting);
            n.bench.record_run(start, dur);
            n.last_bench_duration = Some(dur);
        }
        self.try_get_work(now, id);
    }

    fn on_task_transfer(&mut self, now: SimTime, to: NodeId, tasks: Vec<(u32, NodeId)>) {
        if self.alive.contains(to) {
            self.node_mut(to).deque.extend(tasks);
            if matches!(self.node(to).activity, NodeActivity::Waiting) {
                self.try_get_work(now, to);
            }
        } else {
            self.adopt_tasks(now, tasks);
        }
    }

    fn on_retry(&mut self, now: SimTime, id: NodeId, generation: u64) {
        if !self.alive.contains(id) || self.retry_gen[id.index()] != generation {
            return;
        }
        if matches!(self.node(id).activity, NodeActivity::Waiting) {
            self.try_get_work(now, id);
        }
    }

    // ------------------------------------------------------------------
    // Malleability: leaving, joining, crashing
    // ------------------------------------------------------------------

    fn perform_leave(&mut self, now: SimTime, id: NodeId) {
        // Merge the node's final partial period into the aggregate so time
        // conservation holds across the whole run.
        {
            let n = self.node_mut(id);
            n.flush_stats(now);
            let report = n.stats.take_report(now, 1.0);
            self.aggregate.merge(&report.breakdown);
        }
        let queued: Vec<(u32, NodeId)> = self.node_mut(id).deque.drain(..).collect();
        let cluster = self.node(id).cluster;
        self.node_mut(id).transition(now, NodeActivity::Gone);
        self.alive.remove(id, cluster);
        self.registry.leave(id);
        self.pool.release(id);
        self.coordinator.node_gone(id);
        self.speeds.remove(id);
        self.record_node_count(now);
        if let Some(em) = &self.em {
            em.leaves.inc();
            self.metrics.emit(
                MetricEvent::new(now.0, "leave")
                    .with("node", Value::U64(u64::from(id.0)))
                    .with("cluster", Value::U64(u64::from(cluster.0)))
                    .with("queued_tasks", Value::U64(queued.len() as u64)),
            );
        }
        if !queued.is_empty() {
            // Hand the queue to a peer; the transfer crosses the network.
            if let Some(target) = self.alive.lowest() {
                let bytes: u64 = queued
                    .iter()
                    .map(|&(t, _)| self.cur_tree().node(t as usize).payload_bytes)
                    .sum();
                let d = self.network.deliver(
                    now,
                    self.pool.cluster_of(id),
                    self.node(target).cluster,
                    bytes,
                );
                if let Some(em) = &self.em {
                    em.task_transfers.inc();
                    self.metrics.emit(
                        MetricEvent::new(now.0, "task_transfer")
                            .with("from", Value::U64(u64::from(id.0)))
                            .with("to", Value::U64(u64::from(target.0)))
                            .with("tasks", Value::U64(queued.len() as u64))
                            .with("bytes", Value::U64(bytes)),
                    );
                }
                self.queue.push(
                    d.arrives_at,
                    Event::TaskTransfer {
                        to: target,
                        tasks: self.task_batches.put(queued),
                    },
                );
            } else {
                self.orphans
                    .extend(queued.into_iter().map(|(t, o)| (t, Some(o))));
            }
        }
    }

    fn crash_node(&mut self, now: SimTime, id: NodeId) -> Vec<(u32, NodeId)> {
        let mut tasks: Vec<(u32, NodeId)> = Vec::new();
        let cluster;
        {
            let n = self.node_mut(id);
            n.flush_stats(now);
            // A crashed node's statistics are lost with it — they are NOT
            // merged into the aggregate (the coordinator never sees them
            // either). We deliberately drop the partial period.
            if let NodeActivity::Computing { task, origin, .. } = n.activity {
                tasks.push((task, origin));
            }
            tasks.extend(n.deque.drain(..));
            cluster = n.cluster;
            n.transition(now, NodeActivity::Gone);
        }
        self.alive.remove(id, cluster);
        self.registry.report_crash(id);
        self.pool.mark_lost(id);
        self.record_node_count(now);
        if let Some(em) = &self.em {
            em.crashes.inc();
        }
        tasks
    }

    fn on_recover(
        &mut self,
        now: SimTime,
        victims: Vec<NodeId>,
        tasks: Vec<(u32, NodeId)>,
        cluster: Option<ClusterId>,
    ) {
        // The detection window closes here: the suspicion raised at
        // injection time resolves into confirmed deaths, which clears the
        // suspects and applies the blacklist policy (whole site for a
        // cluster outage, just the victims otherwise).
        self.coordinator.record_crashed(&victims, cluster);
        if let Some(em) = &self.em {
            em.suspects_cleared.add(victims.len() as u64);
        }
        for v in victims {
            self.speeds.remove(v);
        }
        self.adopt_tasks(now, tasks);
    }

    // ------------------------------------------------------------------
    // Injections
    // ------------------------------------------------------------------

    fn on_injections(&mut self, now: SimTime) {
        let due = {
            let mut injections = Vec::new();
            for s in self.cfg.injections.pop_due(now) {
                injections.push(s.injection);
            }
            injections
        };
        for inj in due {
            if let Some(em) = &self.em {
                em.injections.inc();
            }
            match inj {
                Injection::CpuLoad {
                    cluster,
                    count,
                    factor,
                } => {
                    // Disjoint field borrows: the member list lives in the
                    // peer cache, the load knobs in the node table.
                    let members = self.alive.members(cluster);
                    let take = count.unwrap_or(members.len()).min(members.len());
                    for &m in &members[..take] {
                        self.nodes[m.index()]
                            .as_mut()
                            .expect("alive node must exist")
                            .set_load_factor(factor.max(1.0));
                    }
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("cpu_load".to_string()))
                                .with("cluster", Value::U64(u64::from(cluster.0)))
                                .with("nodes", Value::U64(take as u64))
                                .with("factor", Value::F64(factor)),
                        );
                    }
                }
                Injection::UplinkBandwidth {
                    cluster,
                    bandwidth_bps,
                } => {
                    self.network.set_uplink_bandwidth(cluster, bandwidth_bps);
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("uplink_bandwidth".to_string()))
                                .with("cluster", Value::U64(u64::from(cluster.0)))
                                .with("bps", Value::F64(bandwidth_bps)),
                        );
                    }
                }
                Injection::CrashCluster { cluster } => {
                    let victims = self.alive.members(cluster).to_vec();
                    // Fail-stop site failure. The coordinator does NOT learn
                    // of the deaths yet — for `fault_detection_delay` it only
                    // sees silence, so the victims are marked Suspect and the
                    // hold-fire rule keeps survivors safe until RecoverCrash
                    // confirms the deaths and blacklists the whole site
                    // (paper §5, scenario 6).
                    self.coordinator.mark_suspects(&victims);
                    if let Some(em) = &self.em {
                        em.suspects_marked.add(victims.len() as u64);
                    }
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("crash_cluster".to_string()))
                                .with("cluster", Value::U64(u64::from(cluster.0)))
                                .with("nodes", Value::U64(victims.len() as u64)),
                        );
                    }
                    self.crash_many(now, victims, Some(cluster));
                }
                Injection::CrashNodes { cluster, count } => {
                    let victims: Vec<NodeId> = self
                        .alive
                        .members(cluster)
                        .iter()
                        .copied()
                        .take(count)
                        .collect();
                    // Partial failure: suspicion now, and at detection time
                    // blacklist only the victims, not the site.
                    self.coordinator.mark_suspects(&victims);
                    if let Some(em) = &self.em {
                        em.suspects_marked.add(victims.len() as u64);
                    }
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("crash_nodes".to_string()))
                                .with("cluster", Value::U64(u64::from(cluster.0)))
                                .with("nodes", Value::U64(victims.len() as u64)),
                        );
                    }
                    self.crash_many(now, victims, None);
                }
                Injection::Grow { count, prefer } => {
                    // An externally granted capacity increase rides the same
                    // path as a coordinator Add: blacklists are honored and
                    // the nodes activate after the join delay.
                    let prefer: Vec<ClusterId> = prefer.into_iter().collect();
                    self.request_nodes(now, count, LearnedRequirements::default(), &prefer);
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("grow".to_string()))
                                .with("count", Value::U64(count as u64)),
                        );
                    }
                }
                Injection::Shrink { cluster, count } => {
                    let victims: Vec<NodeId> = self
                        .alive
                        .members(cluster)
                        .iter()
                        .copied()
                        .take(count)
                        .collect();
                    if self.metrics.is_enabled() {
                        self.metrics.emit(
                            MetricEvent::new(now.0, "injection")
                                .with("injection", Value::Str("shrink".to_string()))
                                .with("cluster", Value::U64(u64::from(cluster.0)))
                                .with("nodes", Value::U64(victims.len() as u64)),
                        );
                    }
                    self.signal_leave(now, &victims);
                }
            }
        }
    }

    fn crash_many(&mut self, now: SimTime, victims: Vec<NodeId>, cluster: Option<ClusterId>) {
        if victims.is_empty() {
            return;
        }
        let mut tasks = Vec::new();
        for &v in &victims {
            tasks.extend(self.crash_node(now, v));
        }
        if self.metrics.is_enabled() {
            self.metrics.emit(
                MetricEvent::new(now.0, "crash")
                    .with(
                        "victims",
                        Value::Raw(sagrid_core::json::u64_array(
                            victims.iter().map(|v| u64::from(v.0)),
                        )),
                    )
                    .with("orphaned_tasks", Value::U64(tasks.len() as u64)),
            );
        }
        self.queue.push(
            now + self.cfg.timing.fault_detection_delay,
            Event::RecoverCrash {
                victims: self.victim_batches.put(victims),
                tasks: self.task_batches.put(tasks),
                cluster,
            },
        );
    }

    // ------------------------------------------------------------------
    // The adaptation coordinator's period
    // ------------------------------------------------------------------

    fn on_coordinator_tick(&mut self, now: SimTime) {
        if self.finished {
            return;
        }
        // Pull reports from every alive node (the coordinator misses nodes
        // mid-steal etc.; it then relies on their previous report, which
        // `Coordinator` keeps). The id snapshot reuses a scratch buffer so
        // periodic ticks allocate nothing once warmed up.
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend(self.alive.iter());
        let mut raw = Vec::with_capacity(ids.len());
        for &id in &ids {
            self.registry.heartbeat(now, id);
            let n = self.node_mut(id);
            n.flush_stats(now);
            let report = n.stats.take_report(now, 1.0); // speed filled below
            let bench = n.last_bench_duration;
            raw.push((report, bench));
            if let Some(d) = bench {
                self.speeds.record(id, d);
            }
        }
        self.scratch_ids = ids;
        let rel = self.speeds.all_relative_speeds();
        // Per-cluster ic-overhead telemetry (mirrors what the coordinator's
        // exceptional-cluster rule sees).
        let mut per_cluster: std::collections::BTreeMap<ClusterId, (f64, usize)> =
            std::collections::BTreeMap::new();
        for (report, _) in &raw {
            let e = per_cluster.entry(report.cluster).or_insert((0.0, 0));
            e.0 += report.ic_overhead_fraction();
            e.1 += 1;
        }
        self.cluster_ic_timeline.push((
            now,
            per_cluster
                .into_iter()
                .map(|(c, (sum, n))| (c, sum / n.max(1) as f64))
                .collect(),
        ));
        for (mut report, _) in raw {
            self.aggregate.merge(&report.breakdown);
            report.speed = rel.get(&report.node).copied().unwrap_or(1.0);
            self.coordinator.record_report(report);
        }
        // Bandwidth observations, estimated from the data-transfer times
        // the estimator accumulated this period (paper §3.3) — the
        // coordinator never reads the network model directly.
        let clusters: Vec<ClusterId> = self.alive.participating_clusters().collect();
        for c in clusters {
            if let Some(bw) = self.bandwidth.estimate(c) {
                self.coordinator.observe_uplink(c, bw);
            }
        }
        let _ = self.registry.detect_failures(now);
        let eff = self.coordinator.main().current_wa_efficiency();
        self.efficiency_timeline.push((now, eff));

        // §7 feedback control: judge the previous removal by this period's
        // efficiency and refine the badness coefficients if it flopped.
        if let (Some(tuner), Some((dominant, eff_before))) =
            (&self.tuner, self.pending_feedback.take())
        {
            let mut coeffs = self.coefficients;
            if tuner.update(&mut coeffs, dominant, eff_before, eff) {
                self.coefficients = coeffs;
                self.coordinator.set_coefficients(coeffs);
            }
        }

        if self.cfg.mode.adapts() {
            let fastest_available = self.fastest_free_speed();
            // Snapshot per-node (speed, ic) so a removal decision can be
            // classified for the feedback tuner.
            let snapshot: std::collections::BTreeMap<NodeId, (f64, f64)> = self
                .coordinator
                .main()
                .latest_reports()
                .map(|r| (r.node, (r.speed, r.ic_overhead_fraction())))
                .collect();
            let decision = self.coordinator.evaluate(now, fastest_available);
            if let Some(em) = &self.em {
                em.decisions.inc();
                // Every decision becomes a provenance event: the wa_eff,
                // per-node badness terms and blacklist/learned state that
                // produced it, reconstructible from the JSONL stream alone.
                if let Some(entry) = self.coordinator.main().log().last() {
                    if entry.hold_fire.is_some() {
                        em.holdfire_decisions.inc();
                    }
                    self.metrics.emit(crate::provenance::decision_event(entry));
                }
            }
            if self.tuner.is_some() {
                if let Decision::RemoveNodes { nodes } = &decision {
                    // Majority dominant term over the removed set.
                    let mut ic_votes = 0usize;
                    let mut total = 0usize;
                    for n in nodes {
                        if let Some(&(speed, ic)) = snapshot.get(n) {
                            total += 1;
                            if dominant_term(&self.coefficients, speed, ic)
                                == DominantTerm::IcOverhead
                            {
                                ic_votes += 1;
                            }
                        }
                    }
                    if total > 0 {
                        let dominant = if ic_votes * 2 >= total {
                            DominantTerm::IcOverhead
                        } else {
                            DominantTerm::Speed
                        };
                        self.pending_feedback = Some((dominant, eff));
                    }
                }
            }
            self.apply_decision(now, decision);
        }

        self.queue.push(
            now + self.cfg.policy.monitoring_period,
            Event::CoordinatorTick,
        );
    }

    /// Best base speed among free, non-blacklisted nodes (advertised to the
    /// opportunistic-migration extension).
    fn fastest_free_speed(&self) -> Option<f64> {
        let blacklisted = self.coordinator.main().blacklisted_clusters();
        self.cfg
            .grid
            .clusters
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let c = ClusterId(*i as u16);
                !blacklisted.contains(&c) && self.pool.free_in_cluster(c) > 0
            })
            .map(|(_, spec)| spec.node_speed)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            })
    }

    fn apply_decision(&mut self, now: SimTime, decision: Decision) {
        match decision {
            Decision::None => {}
            Decision::Add {
                count,
                requirements,
                prefer,
            } => {
                self.request_nodes(now, count, requirements, &prefer);
            }
            Decision::RemoveNodes { nodes } => self.signal_leave(now, &nodes),
            Decision::RemoveCluster { cluster, nodes } => {
                // Make the learned bandwidth usable by the scheduler too.
                let estimate = self
                    .bandwidth
                    .estimate(cluster)
                    .unwrap_or_else(|| self.network.uplink_bandwidth(cluster));
                self.pool.set_uplink_estimate(cluster, estimate);
                self.signal_leave(now, &nodes);
            }
            Decision::OpportunisticSwap {
                remove,
                add,
                requirements,
            } => {
                self.request_nodes(now, add, requirements, &[]);
                self.signal_leave(now, &remove);
            }
        }
    }

    fn request_nodes(
        &mut self,
        now: SimTime,
        count: usize,
        req: LearnedRequirements,
        prefer: &[ClusterId],
    ) {
        let requirements = Requirements {
            min_uplink_bps: req.min_uplink_bps,
            min_speed: req.min_speed,
        };
        let alloc = if self.cfg.policy.opportunistic_migration {
            AllocPolicy::FastestFirst
        } else {
            AllocPolicy::LocalityAware
        };
        let (bl_nodes, bl_clusters) = {
            let main = self.coordinator.main();
            (
                main.blacklisted_nodes().clone(),
                main.blacklisted_clusters().clone(),
            )
        };
        let grants: Vec<NodeGrant> =
            self.pool
                .request(count, alloc, &requirements, &bl_nodes, &bl_clusters, prefer);
        for g in grants {
            self.queue.push(
                now + self.cfg.timing.join_delay,
                Event::Activate {
                    node: g.node,
                    base_speed: g.base_speed,
                },
            );
        }
    }

    fn signal_leave(&mut self, now: SimTime, nodes: &[NodeId]) {
        for &id in nodes {
            self.registry.signal_leave(id);
        }
        // Deliver the registry's signals (the paper's coordinator uses the
        // Ibis registry's signal facility to notify nodes).
        for id in self.registry.take_signals() {
            if !self.alive.contains(id) {
                continue;
            }
            self.node_mut(id).leave_requested = true;
            if matches!(self.node(id).activity, NodeActivity::Waiting) {
                self.try_get_work(now, id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Teardown
    // ------------------------------------------------------------------

    fn into_result(mut self) -> RunResult {
        let now = self.queue.now();
        // Fold the final partial period of surviving nodes into the
        // aggregate.
        let ids: Vec<NodeId> = self.alive.iter().collect();
        for id in ids {
            let n = self.node_mut(id);
            n.flush_stats(now);
            let report = n.stats.take_report(now, 1.0);
            self.aggregate.merge(&report.breakdown);
        }
        let total_runtime = if let Some(&(_, _)) = self.node_count_timeline.first() {
            // Runtime is measured to the completion of the last iteration.
            self.iteration_durations
                .iter()
                .fold(SimDuration::ZERO, |a, &d| a + d)
        } else {
            SimDuration::ZERO
        };
        let activity_traces: Vec<(NodeId, crate::trace::NodeTrace)> = self
            .nodes
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_mut()
                    .and_then(|n| n.trace.take())
                    .map(|t| (NodeId(i as u32), t))
            })
            .collect();
        // Fold the plainly-accumulated hot-path statistics (and the
        // kernel's event total, only known at teardown) into the registry
        // so one snapshot carries every counter. Keeping these as plain
        // integers during the run keeps the steal path free of atomics.
        if self.metrics.is_enabled() {
            let add = |name: &str, v: u64| {
                if let Some(c) = self.metrics.counter(name) {
                    c.add(v);
                }
            };
            add("des.events_processed", self.queue.processed());
            add("des.steal_attempts", self.steal_attempts);
            add("des.wide_steal_attempts", self.wide_steal_attempts);
            add("des.peer_cache_hits", self.peer_cache_hits);
            for (i, &n) in self.steals_by_cluster.iter().enumerate() {
                add(&format!("des.steals.to_cluster.{i}"), n);
            }
        }
        let metrics = self.metrics.is_enabled().then(|| self.metrics.report());
        RunResult {
            total_runtime,
            iteration_durations: self.iteration_durations,
            node_count_timeline: self.node_count_timeline,
            decisions: self.coordinator.main().log().to_vec(),
            efficiency_timeline: self.efficiency_timeline,
            cluster_ic_timeline: self.cluster_ic_timeline,
            aggregate: self.aggregate,
            events_processed: self.queue.processed(),
            steal_attempts: self.steal_attempts,
            peer_cache_hits: self.peer_cache_hits,
            timed_out: self.timed_out,
            activity_traces,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptMode, TimingConfig};
    use sagrid_adapt::AdaptPolicy;
    use sagrid_core::config::GridConfig;
    use sagrid_core::workload::barnes_hut_profile;
    use sagrid_simnet::InjectionSchedule;

    fn quick_workload(iterations: usize) -> sagrid_core::workload::IterativeWorkload {
        barnes_hut_profile(iterations, 8, 2.0, 11)
    }

    fn base_config() -> SimConfig {
        SimConfig {
            grid: GridConfig::uniform(3, 8),
            policy: AdaptPolicy {
                monitoring_period: SimDuration::from_secs(30),
                ..AdaptPolicy::default()
            },
            initial_layout: vec![(ClusterId(0), 4), (ClusterId(1), 4)],
            workload: quick_workload(3),
            injections: InjectionSchedule::empty(),
            mode: AdaptMode::NoAdapt,
            steal_policy: StealPolicy::ClusterAware,
            timing: TimingConfig {
                benchmark_work: SimDuration::from_secs(1),
                ..TimingConfig::default()
            },
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: false,
            queue_backend: Default::default(),
            seed: 7,
        }
    }

    #[test]
    fn run_completes_all_iterations() {
        let r = GridSim::run(base_config());
        assert!(!r.timed_out);
        assert_eq!(r.iteration_durations.len(), 3);
        assert!(r.total_runtime > SimDuration::ZERO);
        assert!(r.events_processed > 100);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = GridSim::run(base_config());
        let b = GridSim::run(base_config());
        assert_eq!(a.iteration_durations, b.iteration_durations);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.node_count_timeline, b.node_count_timeline);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GridSim::run(base_config());
        let mut cfg = base_config();
        cfg.seed = 8;
        let b = GridSim::run(cfg);
        assert_ne!(a.iteration_durations, b.iteration_durations);
    }

    #[test]
    fn more_nodes_run_faster() {
        let small = GridSim::run(base_config());
        let mut cfg = base_config();
        cfg.initial_layout = vec![(ClusterId(0), 8), (ClusterId(1), 8)];
        let big = GridSim::run(cfg);
        assert!(
            big.total_runtime < small.total_runtime,
            "16 nodes ({}) should beat 8 nodes ({})",
            big.total_runtime,
            small.total_runtime
        );
    }

    #[test]
    fn monitoring_mode_pays_benchmark_overhead() {
        let plain = GridSim::run(base_config());
        let mut cfg = base_config();
        cfg.mode = AdaptMode::MonitorOnly;
        let monitored = GridSim::run(cfg);
        assert_eq!(plain.aggregate.benchmark, SimDuration::ZERO);
        assert!(monitored.aggregate.benchmark > SimDuration::ZERO);
        assert!(monitored.total_runtime >= plain.total_runtime);
    }

    #[test]
    fn time_conservation_no_adapt() {
        // With a static node set, aggregate accounted time ≈ nodes × runtime
        // (up to the final-period flush at the last event's timestamp).
        let r = GridSim::run(base_config());
        let total = r.aggregate.total().as_secs_f64();
        assert!(total > 0.0);
        let per_node = total / 8.0;
        let runtime = r.total_runtime.as_secs_f64();
        assert!(
            (per_node - runtime).abs() / runtime < 0.2,
            "accounted {per_node} vs runtime {runtime}"
        );
    }

    #[test]
    fn adaptation_grows_an_undersized_run() {
        let mut cfg = base_config();
        cfg.mode = AdaptMode::Adapt;
        cfg.initial_layout = vec![(ClusterId(0), 2)];
        cfg.workload = barnes_hut_profile(6, 8, 4.0, 3);
        let r = GridSim::run(cfg);
        assert!(!r.timed_out);
        assert!(
            r.final_node_count() > 2,
            "adaptation should have added nodes: timeline {:?}",
            r.node_count_timeline
        );
        assert!(r.decisions.iter().any(|d| d.decision.kind() == "add"));
    }

    #[test]
    fn crash_recovery_completes_the_workload() {
        let mut cfg = base_config();
        cfg.injections = InjectionSchedule::new(vec![sagrid_simnet::ScheduledInjection {
            at: SimTime::from_secs(5),
            injection: Injection::CrashCluster {
                cluster: ClusterId(1),
            },
        }]);
        let r = GridSim::run(cfg);
        assert!(!r.timed_out, "must finish despite losing half the nodes");
        assert_eq!(r.iteration_durations.len(), 3);
        assert_eq!(r.final_node_count(), 4);
    }

    #[test]
    fn activity_traces_match_the_aggregate_accounting() {
        let mut cfg = base_config();
        cfg.record_trace = true;
        let r = GridSim::run(cfg);
        assert_eq!(r.activity_traces.len(), 8, "one trace per node");
        let mut busy_total = SimDuration::ZERO;
        for (_, trace) in &r.activity_traces {
            assert!(trace.is_well_formed());
            busy_total += trace.total(crate::trace::SpanKind::Busy);
        }
        assert_eq!(
            busy_total, r.aggregate.busy,
            "traces and statistics attribute the same busy time"
        );
    }

    #[test]
    fn tracing_does_not_change_the_run() {
        let plain = GridSim::run(base_config());
        let mut cfg = base_config();
        cfg.record_trace = true;
        let traced = GridSim::run(cfg);
        assert_eq!(plain.iteration_durations, traced.iteration_durations);
        assert_eq!(plain.events_processed, traced.events_processed);
    }

    #[test]
    fn try_new_rejects_invalid_configs() {
        let err = |cfg: SimConfig| GridSim::try_new(cfg).map(|_| ()).unwrap_err();

        let mut empty_layout = base_config();
        empty_layout.initial_layout.clear();
        let e = err(empty_layout);
        assert!(e.contains("initial layout"), "unexpected error: {e}");

        let mut unknown_cluster = base_config();
        unknown_cluster.initial_layout = vec![(ClusterId(9), 4)];
        let e = err(unknown_cluster);
        assert!(e.contains("unknown cluster"), "unexpected error: {e}");

        let mut oversubscribed = base_config();
        oversubscribed.initial_layout = vec![(ClusterId(0), 99)];
        let e = err(oversubscribed);
        assert!(e.contains("capacity"), "unexpected error: {e}");

        let mut no_work = base_config();
        no_work.workload.iterations.clear();
        assert!(GridSim::try_new(no_work).is_err());

        assert!(GridSim::try_new(base_config()).is_ok());
    }

    #[test]
    fn try_run_matches_run_on_valid_configs() {
        let a = GridSim::run(base_config());
        let b = GridSim::try_run(base_config()).expect("config is valid");
        assert_eq!(a.iteration_durations, b.iteration_durations);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn metrics_disabled_runs_carry_no_report() {
        let r = GridSim::run(base_config());
        assert!(
            r.metrics.is_none(),
            "default runs must not allocate metrics"
        );
    }

    #[test]
    fn metrics_enabled_run_is_identical_and_mirrors_counters() {
        use sagrid_core::metrics::Metrics;
        let plain = GridSim::run(base_config());
        let metered = GridSim::try_run_with_metrics(base_config(), Metrics::enabled())
            .expect("config is valid");
        // Metrics observation must not perturb the simulation.
        assert_eq!(plain.iteration_durations, metered.iteration_durations);
        assert_eq!(plain.events_processed, metered.events_processed);
        let report = metered.metrics.as_ref().expect("metrics were enabled");
        // Registry counters mirror the RunResult's ad-hoc counters exactly.
        assert_eq!(report.counter("des.steal_attempts"), metered.steal_attempts);
        assert_eq!(
            report.counter("des.peer_cache_hits"),
            metered.peer_cache_hits
        );
        assert_eq!(
            report.counter("des.events_processed"),
            metered.events_processed
        );
        // Per-victim-cluster steal counters partition the total.
        let by_cluster: u64 = (0..3)
            .map(|i| report.counter(&format!("des.steals.to_cluster.{i}")))
            .sum();
        assert_eq!(by_cluster, metered.steal_attempts);
        // Every node joined once; the alive gauge ends at the final count.
        assert_eq!(report.counter("des.node_joins"), 8);
        assert_eq!(report.gauge("des.nodes_alive"), 8);
        assert_eq!(report.events_of_kind("join").count(), 8);
        // The scheduler shares the same registry.
        assert_eq!(report.counter("sched.grants"), 8);
    }

    #[test]
    fn crash_metrics_count_victims_and_decisions_are_logged() {
        use sagrid_core::metrics::Metrics;
        let mut cfg = base_config();
        cfg.mode = AdaptMode::Adapt;
        cfg.injections = InjectionSchedule::new(vec![sagrid_simnet::ScheduledInjection {
            at: SimTime::from_secs(5),
            injection: Injection::CrashCluster {
                cluster: ClusterId(1),
            },
        }]);
        let r = GridSim::try_run_with_metrics(cfg, Metrics::enabled()).expect("valid");
        let report = r.metrics.as_ref().expect("metrics were enabled");
        assert_eq!(report.counter("des.node_crashes"), 4);
        assert_eq!(report.counter("des.injections"), 1);
        assert_eq!(report.events_of_kind("crash").count(), 1);
        assert_eq!(report.events_of_kind("injection").count(), 1);
        assert_eq!(
            report.counter("des.decisions"),
            r.decisions.len() as u64,
            "one decision event per coordinator log entry"
        );
        assert_eq!(report.events_of_kind("decision").count(), r.decisions.len());
    }

    #[test]
    fn shaped_uplink_inflates_iteration_times() {
        let plain = GridSim::run(base_config());
        let mut cfg = base_config();
        cfg.injections = InjectionSchedule::new(vec![sagrid_simnet::ScheduledInjection {
            at: SimTime::ZERO,
            injection: Injection::UplinkBandwidth {
                cluster: ClusterId(1),
                bandwidth_bps: 100_000.0,
            },
        }]);
        let shaped = GridSim::run(cfg);
        assert!(
            shaped.total_runtime > plain.total_runtime,
            "shaped {} vs plain {}",
            shaped.total_runtime,
            plain.total_runtime
        );
    }
}
