//! Decision-provenance serialisation: every coordinator decision becomes
//! a structured [`MetricEvent`] carrying the full evidence that produced
//! it — the weighted-average efficiency, the per-node badness terms, the
//! blacklist state after the decision and the learned requirements.
//!
//! The inverse direction, [`reconstruct_decision`], parses one emitted
//! JSONL line back into a [`DecisionProvenance`]; a regression test
//! asserts that a whole scenario-5 decision log is reconstructible from
//! the JSONL stream alone.

use sagrid_adapt::coordinator::LearnedRequirements;
use sagrid_adapt::{Decision, DecisionLogEntry, NodeBadnessRecord};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::json::{u64_array, write_f64, JsonValue};
use sagrid_core::metrics::{MetricEvent, Value};
use sagrid_core::time::SimTime;
use std::fmt::Write as _;

/// Builds the `"decision"` metric event for one decision-log entry.
pub fn decision_event(entry: &DecisionLogEntry) -> MetricEvent {
    let mut ev = MetricEvent::new(entry.at.0, "decision")
        .with("decision", Value::Str(entry.decision.kind().to_string()))
        .with("wa_eff", Value::F64(entry.wa_efficiency))
        .with("reports", Value::U64(entry.nodes as u64));
    match &entry.decision {
        Decision::None => {}
        Decision::Add { count, prefer, .. } => {
            ev = ev.with("count", Value::U64(*count as u64)).with(
                "prefer",
                Value::Raw(u64_array(prefer.iter().map(|c| u64::from(c.0)))),
            );
        }
        Decision::RemoveNodes { nodes } => {
            ev = ev.with(
                "remove",
                Value::Raw(u64_array(nodes.iter().map(|n| u64::from(n.0)))),
            );
        }
        Decision::RemoveCluster { cluster, nodes } => {
            ev = ev.with("cluster", Value::U64(u64::from(cluster.0))).with(
                "remove",
                Value::Raw(u64_array(nodes.iter().map(|n| u64::from(n.0)))),
            );
        }
        Decision::OpportunisticSwap { remove, add, .. } => {
            ev = ev.with("count", Value::U64(*add as u64)).with(
                "remove",
                Value::Raw(u64_array(remove.iter().map(|n| u64::from(n.0)))),
            );
        }
    }
    ev = ev
        .with("badness", Value::Raw(badness_array(&entry.badness)))
        .with(
            "blacklist_nodes",
            Value::Raw(u64_array(
                entry.blacklisted_nodes.iter().map(|n| u64::from(n.0)),
            )),
        )
        .with(
            "blacklist_clusters",
            Value::Raw(u64_array(
                entry.blacklisted_clusters.iter().map(|c| u64::from(c.0)),
            )),
        );
    if let Some(bw) = entry.learned.min_uplink_bps {
        ev = ev.with("min_uplink_bps", Value::F64(bw));
    }
    if let Some(s) = entry.learned.min_speed {
        ev = ev.with("min_speed", Value::F64(s));
    }
    // Suspicion snapshot: which members had unresolved liveness when this
    // evaluation ran (always emitted, even when empty — an auditor must
    // be able to tell "no suspects" from "field predates suspicion").
    ev = ev.with(
        "suspects",
        Value::Raw(u64_array(entry.suspect_ids.iter().map(|n| u64::from(n.0)))),
    );
    if let Some(reason) = &entry.hold_fire {
        ev = ev.with("hold_fire", Value::Str(reason.clone()));
    }
    ev
}

fn badness_array(records: &[NodeBadnessRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node\":{},\"cluster\":{},\"speed\":",
            r.node.0, r.cluster.0
        );
        write_f64(&mut out, r.speed);
        out.push_str(",\"ic\":");
        write_f64(&mut out, r.ic_overhead);
        let _ = write!(out, ",\"worst\":{},\"badness\":", r.in_worst_cluster);
        write_f64(&mut out, r.badness);
        out.push('}');
    }
    out.push(']');
    out
}

/// A decision reconstructed from one emitted JSONL line. Field-for-field
/// comparable against the in-memory [`DecisionLogEntry`] it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionProvenance {
    /// Evaluation time.
    pub at: SimTime,
    /// Weighted-average efficiency input.
    pub wa_efficiency: f64,
    /// Number of reports consumed.
    pub reports: usize,
    /// Decision kind tag (matches [`Decision::kind`]).
    pub kind: String,
    /// Nodes removed by the decision (empty for none/add).
    pub removed: Vec<NodeId>,
    /// The removed cluster, for `remove-cluster`.
    pub cluster: Option<ClusterId>,
    /// Requested node count, for `add`/`opportunistic-swap`.
    pub count: Option<usize>,
    /// Preferred clusters, for `add`.
    pub prefer: Vec<ClusterId>,
    /// Ranked badness terms.
    pub badness: Vec<NodeBadnessRecord>,
    /// Blacklisted nodes after the decision.
    pub blacklisted_nodes: Vec<NodeId>,
    /// Blacklisted clusters after the decision.
    pub blacklisted_clusters: Vec<ClusterId>,
    /// Learned requirements after the decision.
    pub learned: LearnedRequirements,
    /// Members Suspect at evaluation time (empty on streams that predate
    /// suspicion tracking — the parser is lenient).
    pub suspect_ids: Vec<NodeId>,
    /// Hold-fire reason when a removal was withheld under suspicion.
    pub hold_fire: Option<String>,
}

impl DecisionProvenance {
    /// Whether this reconstruction agrees with `entry` on every recorded
    /// field. Float comparisons are exact: the JSON encoder uses Rust's
    /// shortest-roundtrip formatting, so serialise→parse is lossless.
    pub fn matches(&self, entry: &DecisionLogEntry) -> bool {
        let decision_fields_match = match &entry.decision {
            Decision::None => self.removed.is_empty() && self.cluster.is_none(),
            Decision::Add { count, prefer, .. } => {
                self.count == Some(*count) && self.prefer == *prefer
            }
            Decision::RemoveNodes { nodes } => self.removed == *nodes,
            Decision::RemoveCluster { cluster, nodes } => {
                self.cluster == Some(*cluster) && self.removed == *nodes
            }
            Decision::OpportunisticSwap { remove, add, .. } => {
                self.removed == *remove && self.count == Some(*add)
            }
        };
        self.at == entry.at
            && self.wa_efficiency == entry.wa_efficiency
            && self.reports == entry.nodes
            && self.kind == entry.decision.kind()
            && decision_fields_match
            && self.badness == entry.badness
            && self.blacklisted_nodes == entry.blacklisted_nodes
            && self.blacklisted_clusters == entry.blacklisted_clusters
            && self.learned == entry.learned
            && self.suspect_ids == entry.suspect_ids
            && self.hold_fire == entry.hold_fire
    }
}

/// Parses one JSONL `"decision"` event back into its provenance record.
pub fn reconstruct_decision(line: &JsonValue) -> Result<DecisionProvenance, String> {
    if line.get("kind").and_then(JsonValue::as_str) != Some("decision") {
        return Err("not a decision event".to_string());
    }
    let at = SimTime(
        line.get("at_us")
            .and_then(JsonValue::as_u64)
            .ok_or("missing at_us")?,
    );
    let wa_efficiency = line
        .get("wa_eff")
        .and_then(JsonValue::as_f64)
        .ok_or("missing wa_eff")?;
    let reports = line
        .get("reports")
        .and_then(JsonValue::as_u64)
        .ok_or("missing reports")? as usize;
    let kind = line
        .get("decision")
        .and_then(JsonValue::as_str)
        .ok_or("missing decision kind")?
        .to_string();
    let removed = node_list(line.get("remove"))?;
    let cluster = line
        .get("cluster")
        .and_then(JsonValue::as_u64)
        .map(|c| ClusterId(c as u16));
    let count = line
        .get("count")
        .and_then(JsonValue::as_u64)
        .map(|c| c as usize);
    let prefer = cluster_list(line.get("prefer"))?;
    let badness = line
        .get("badness")
        .and_then(JsonValue::as_arr)
        .ok_or("missing badness")?
        .iter()
        .map(badness_record)
        .collect::<Result<Vec<_>, _>>()?;
    let blacklisted_nodes = node_list(line.get("blacklist_nodes"))?;
    let blacklisted_clusters = cluster_list(line.get("blacklist_clusters"))?;
    let learned = LearnedRequirements {
        min_uplink_bps: line.get("min_uplink_bps").and_then(JsonValue::as_f64),
        min_speed: line.get("min_speed").and_then(JsonValue::as_f64),
    };
    // Lenient: streams recorded before suspicion tracking simply have no
    // suspects field and reconstruct with an empty snapshot.
    let suspect_ids = node_list(line.get("suspects"))?;
    let hold_fire = line
        .get("hold_fire")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    Ok(DecisionProvenance {
        at,
        wa_efficiency,
        reports,
        kind,
        removed,
        cluster,
        count,
        prefer,
        badness,
        blacklisted_nodes,
        blacklisted_clusters,
        learned,
        suspect_ids,
        hold_fire,
    })
}

fn node_list(v: Option<&JsonValue>) -> Result<Vec<NodeId>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    v.as_arr()
        .ok_or("expected array of node ids".to_string())?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|n| NodeId(n as u32))
                .ok_or("bad node id".to_string())
        })
        .collect()
}

fn cluster_list(v: Option<&JsonValue>) -> Result<Vec<ClusterId>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    v.as_arr()
        .ok_or("expected array of cluster ids".to_string())?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|c| ClusterId(c as u16))
                .ok_or("bad cluster id".to_string())
        })
        .collect()
}

fn badness_record(v: &JsonValue) -> Result<NodeBadnessRecord, String> {
    Ok(NodeBadnessRecord {
        node: NodeId(
            v.get("node")
                .and_then(JsonValue::as_u64)
                .ok_or("bad badness.node")? as u32,
        ),
        cluster: ClusterId(
            v.get("cluster")
                .and_then(JsonValue::as_u64)
                .ok_or("bad badness.cluster")? as u16,
        ),
        speed: v
            .get("speed")
            .and_then(JsonValue::as_f64)
            .ok_or("bad badness.speed")?,
        ic_overhead: v
            .get("ic")
            .and_then(JsonValue::as_f64)
            .ok_or("bad badness.ic")?,
        in_worst_cluster: v
            .get("worst")
            .and_then(JsonValue::as_bool)
            .ok_or("bad badness.worst")?,
        badness: v
            .get("badness")
            .and_then(JsonValue::as_f64)
            .ok_or("bad badness.badness")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::json::parse_json;

    fn entry(decision: Decision) -> DecisionLogEntry {
        DecisionLogEntry {
            at: SimTime::from_secs(180),
            wa_efficiency: 0.7321098,
            nodes: 3,
            decision,
            badness: vec![
                NodeBadnessRecord {
                    node: NodeId(7),
                    cluster: ClusterId(1),
                    speed: 0.875,
                    ic_overhead: 0.4123,
                    in_worst_cluster: true,
                    badness: 52.37290017,
                },
                NodeBadnessRecord {
                    node: NodeId(2),
                    cluster: ClusterId(0),
                    speed: 1.0,
                    ic_overhead: 0.01,
                    in_worst_cluster: false,
                    badness: 2.0,
                },
            ],
            blacklisted_nodes: vec![NodeId(7)],
            blacklisted_clusters: vec![ClusterId(1)],
            learned: LearnedRequirements {
                min_uplink_bps: Some(100_000.5),
                min_speed: None,
            },
            suspect_ids: vec![NodeId(11), NodeId(13)],
            hold_fire: None,
        }
    }

    fn round_trip(e: &DecisionLogEntry) -> DecisionProvenance {
        let json = decision_event(e).to_json();
        let parsed = parse_json(&json).expect("event serialises to valid JSON");
        reconstruct_decision(&parsed).expect("decision reconstructs")
    }

    #[test]
    fn every_decision_variant_round_trips_losslessly() {
        let variants = vec![
            Decision::None,
            Decision::Add {
                count: 4,
                requirements: LearnedRequirements::default(),
                prefer: vec![ClusterId(0), ClusterId(2)],
            },
            Decision::RemoveNodes {
                nodes: vec![NodeId(7), NodeId(3)],
            },
            Decision::RemoveCluster {
                cluster: ClusterId(1),
                nodes: vec![NodeId(7)],
            },
            Decision::OpportunisticSwap {
                remove: vec![NodeId(2)],
                add: 1,
                requirements: LearnedRequirements::default(),
            },
        ];
        for d in variants {
            let e = entry(d);
            let rec = round_trip(&e);
            assert!(rec.matches(&e), "mismatch for {:?}: {rec:?}", e.decision);
        }
    }

    #[test]
    fn hold_fire_round_trips_and_old_streams_stay_parseable() {
        // A withheld decision carries its suspicion snapshot and reason.
        let mut e = entry(Decision::None);
        e.hold_fire = Some("withheld remove-nodes: 2 member(s) suspect".to_string());
        let rec = round_trip(&e);
        assert!(rec.matches(&e));
        assert_eq!(rec.suspect_ids, vec![NodeId(11), NodeId(13)]);
        assert!(rec.hold_fire.is_some());
        // A pre-suspicion stream (no suspects / hold_fire fields) still
        // reconstructs, with an empty snapshot.
        let old = "{\"type\":\"event\",\"at_us\":1,\"kind\":\"decision\",\
                   \"decision\":\"none\",\"wa_eff\":0.4,\"reports\":2,\
                   \"badness\":[],\"blacklist_nodes\":[],\"blacklist_clusters\":[]}";
        let parsed = parse_json(old).unwrap();
        let rec = reconstruct_decision(&parsed).expect("lenient parse");
        assert!(rec.suspect_ids.is_empty());
        assert!(rec.hold_fire.is_none());
    }

    #[test]
    fn mismatches_are_detected() {
        let e = entry(Decision::RemoveNodes {
            nodes: vec![NodeId(7)],
        });
        let mut rec = round_trip(&e);
        assert!(rec.matches(&e));
        rec.wa_efficiency += 1e-9;
        assert!(!rec.matches(&e), "a perturbed field must not match");
    }

    #[test]
    fn non_decision_events_are_rejected() {
        let parsed = parse_json("{\"type\":\"event\",\"at_us\":1,\"kind\":\"join\"}").unwrap();
        assert!(reconstruct_decision(&parsed).is_err());
    }
}
