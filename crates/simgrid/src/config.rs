//! Simulation configuration.

use sagrid_adapt::AdaptPolicy;
use sagrid_core::config::GridConfig;
use sagrid_core::ids::ClusterId;
use sagrid_core::time::SimDuration;
use sagrid_core::workload::IterativeWorkload;
use sagrid_simnet::{InjectionSchedule, QueueBackend};

/// Which parts of the adaptation machinery run (paper §5: runtime1/2/3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptMode {
    /// runtime1: no statistics collection, no benchmarking, no adaptation.
    NoAdapt,
    /// runtime3: statistics + benchmarking run (their overhead is paid) but
    /// the coordinator never changes the resource set.
    MonitorOnly,
    /// runtime2: full adaptation.
    Adapt,
}

impl AdaptMode {
    /// Whether nodes run benchmarks and send reports in this mode.
    pub fn monitors(self) -> bool {
        !matches!(self, AdaptMode::NoAdapt)
    }

    /// Whether the coordinator's decisions are executed.
    pub fn adapts(self) -> bool {
        matches!(self, AdaptMode::Adapt)
    }
}

/// Work-stealing victim-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealPolicy {
    /// Satin's cluster-aware random stealing (van Nieuwpoort et al.):
    /// synchronous random steals inside the cluster, overlapped with at
    /// most one outstanding *asynchronous* wide-area steal.
    ClusterAware,
    /// Plain random stealing: every steal is synchronous and targets a
    /// uniformly random node anywhere in the grid (the baseline CRS was
    /// shown to beat on wide-area systems; used by the ablation bench).
    RandomGlobal,
}

/// Latency/size constants of the simulated runtime system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingConfig {
    /// Bytes of a steal request / empty reply message.
    pub steal_msg_bytes: u64,
    /// Work of the speed benchmark at relative speed 1.0.
    pub benchmark_work: SimDuration,
    /// Delay between a node grant and the node joining the computation
    /// (process launch, class loading, …).
    pub join_delay: SimDuration,
    /// Delay between a crash and the runtime noticing it (broken channels
    /// plus Satin's orphan-recovery bookkeeping).
    pub fault_detection_delay: SimDuration,
    /// Back-off before an out-of-work node retries stealing after every
    /// known victim came up empty.
    pub idle_retry_backoff: SimDuration,
    /// Hard wall-clock cap on the simulation (guards against pathological
    /// configurations looping forever).
    pub max_virtual_time: SimDuration,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            steal_msg_bytes: 64,
            benchmark_work: SimDuration::from_secs(4),
            join_delay: SimDuration::from_secs(5),
            fault_detection_delay: SimDuration::from_secs(3),
            idle_retry_backoff: SimDuration::from_millis(20),
            max_virtual_time: SimDuration::from_secs(4 * 3600),
        }
    }
}

/// Grid size (total nodes across all clusters) at which the auto queue
/// policy switches from the binary-heap to the timer-wheel backend (see
/// [`SimConfig::queue_backend`]). The crossover sits somewhere between the
/// two measured regimes — heap ~30% faster at 36 nodes, wheel ~15% faster
/// at 2^20 nodes — and queue depth tracks the alive population (every idle
/// node keeps a retry timer pending), so total grid capacity is the proxy.
pub const AUTO_WHEEL_NODES: usize = 4096;

/// Full specification of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The grid (topology + pool capacity).
    pub grid: GridConfig,
    /// Adaptation policy for the coordinator.
    pub policy: AdaptPolicy,
    /// Initial resource set: `(cluster, node count)` pairs — "we start an
    /// application on any set of resources".
    pub initial_layout: Vec<(ClusterId, usize)>,
    /// The application.
    pub workload: IterativeWorkload,
    /// Scenario perturbations.
    pub injections: InjectionSchedule,
    /// runtime1 / runtime2 / runtime3.
    pub mode: AdaptMode,
    /// Victim selection policy.
    pub steal_policy: StealPolicy,
    /// Runtime-system constants.
    pub timing: TimingConfig,
    /// Record per-node activity traces ([`crate::trace`]). Off by default
    /// (traces cost memory proportional to activity transitions).
    pub record_trace: bool,
    /// Enable the §7 feedback tuner: the badness coefficients are refined
    /// at runtime based on whether past node-removal decisions actually
    /// improved efficiency.
    pub feedback_tuning: bool,
    /// Use the §7 hierarchical coordinator (one sub-coordinator per
    /// cluster, digests to the main coordinator) instead of the flat one.
    /// Decisions are identical; the main coordinator receives
    /// `O(clusters)` messages per period instead of `O(nodes)`.
    pub hierarchical_coordinator: bool,
    /// Future-event-list implementation for the simulation kernel, or
    /// `None` to let the engine pick by grid size. Both backends produce
    /// bit-identical runs; they differ only in speed. Measured on the
    /// paper scenarios and the million-node stress row: the binary heap
    /// wins on small grids (a few hundred pending events stay cache-hot
    /// and `log n` is tiny), the timer wheel wins once the pending set is
    /// large enough that heap sifts go to cold memory. The auto policy
    /// picks the heap below [`AUTO_WHEEL_NODES`] total grid nodes and the
    /// wheel at or above it.
    pub queue_backend: Option<QueueBackend>,
    /// Master RNG seed; every run with the same config and seed is
    /// bit-identical.
    pub seed: u64,
}

impl SimConfig {
    /// Total nodes in the initial layout.
    pub fn initial_nodes(&self) -> usize {
        self.initial_layout.iter().map(|&(_, n)| n).sum()
    }

    /// Sanity-checks the configuration against the grid.
    pub fn validate(&self) -> Result<(), String> {
        self.policy.validate()?;
        if self.initial_layout.is_empty() {
            return Err("initial layout must name at least one cluster".into());
        }
        for &(c, n) in &self.initial_layout {
            let Some(spec) = self.grid.clusters.get(c.index()) else {
                return Err(format!("initial layout names unknown cluster {c}"));
            };
            if n == 0 || n > spec.nodes {
                return Err(format!(
                    "initial layout requests {n} nodes from cluster {c} (capacity {})",
                    spec.nodes
                ));
            }
        }
        if self.workload.iterations.is_empty() {
            return Err("workload must have at least one iteration".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::workload::barnes_hut_profile;

    fn base() -> SimConfig {
        SimConfig {
            grid: GridConfig::uniform(3, 12),
            policy: AdaptPolicy::default(),
            initial_layout: vec![(ClusterId(0), 12), (ClusterId(1), 12), (ClusterId(2), 12)],
            workload: barnes_hut_profile(2, 36, 10.0, 1),
            injections: InjectionSchedule::empty(),
            mode: AdaptMode::Adapt,
            steal_policy: StealPolicy::ClusterAware,
            timing: TimingConfig::default(),
            record_trace: false,
            feedback_tuning: false,
            hierarchical_coordinator: false,
            queue_backend: None,
            seed: 42,
        }
    }

    #[test]
    fn valid_config_passes() {
        base().validate().unwrap();
        assert_eq!(base().initial_nodes(), 36);
    }

    #[test]
    fn overcommitted_layout_rejected() {
        let mut c = base();
        c.initial_layout = vec![(ClusterId(0), 13)];
        assert!(c.validate().is_err());
    }

    #[test]
    fn unknown_cluster_rejected() {
        let mut c = base();
        c.initial_layout = vec![(ClusterId(9), 1)];
        assert!(c.validate().is_err());
    }

    #[test]
    fn empty_workload_rejected() {
        let mut c = base();
        c.workload.iterations.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn mode_flags() {
        assert!(!AdaptMode::NoAdapt.monitors());
        assert!(AdaptMode::MonitorOnly.monitors());
        assert!(!AdaptMode::MonitorOnly.adapts());
        assert!(AdaptMode::Adapt.monitors() && AdaptMode::Adapt.adapts());
    }
}
