//! Per-node state machine and statistics attribution.
//!
//! A simulated node is always in exactly one [`NodeActivity`]; the engine
//! transitions it and, on every transition, attributes the elapsed span to
//! the matching [`sagrid_core::stats::OverheadBreakdown`] bucket:
//!
//! | activity | bucket |
//! |---|---|
//! | `Computing` | `busy` |
//! | `Benchmarking` | `benchmark` |
//! | `SyncSteal` (awaiting a reply) | `intra_comm` / `inter_comm` by victim |
//! | `Waiting` that ends with a task-carrying wide reply | `inter_comm` (via [`SimNode::absorb_wait_as_comm`]) |
//! | `Waiting` otherwise | `idle` |
//!
//! This is precisely how an overloaded uplink becomes visible to the
//! coordinator as inter-cluster overhead (paper §3.3): nodes in the starved
//! cluster spend their periods waiting on wide-area task transfers crawling
//! through the shaped link, while ordinary barrier idling stays idle.

use crate::trace::{NodeTrace, SpanKind};
use sagrid_adapt::BenchmarkScheduler;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::NodeStats;
use sagrid_core::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// What a node is doing right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeActivity {
    /// Executing task `task` until `until`.
    Computing {
        /// Arena index of the task being executed.
        task: u32,
        /// Node that spawned the task (its result returns there).
        origin: NodeId,
        /// Completion time.
        until: SimTime,
    },
    /// Running the speed benchmark until `until`.
    Benchmarking {
        /// Completion time.
        until: SimTime,
    },
    /// Blocking on a result send (TCP backpressure on the uplink); the
    /// bytes drain at `until`.
    Sending {
        /// When the sender's link has drained.
        until: SimTime,
        /// Whether the result crosses cluster boundaries.
        wide: bool,
    },
    /// Blocked on a synchronous steal reply carrying token `token`.
    SyncSteal {
        /// Matches the reply to the request (stale replies are ignored).
        token: u64,
        /// Whether the victim is in another cluster.
        wide: bool,
    },
    /// Out of work: waiting for a wide-area reply, a retry timer, or new
    /// tasks pushed by a peer.
    Waiting,
    /// Left the computation or crashed. Terminal.
    Gone,
}

/// One simulated processor.
#[derive(Clone, Debug)]
pub struct SimNode {
    /// Node id (dense index into the engine's node table).
    pub id: NodeId,
    /// Site the node lives in.
    pub cluster: ClusterId,
    /// Intrinsic speed relative to the grid's fastest node class.
    pub base_speed: f64,
    /// Cached `1 / effective_speed()`; refreshed whenever `base_speed` or
    /// `load_factor` changes (see [`SimNode::set_load_factor`]). Keeps the
    /// task-start hot path free of float divisions.
    inv_speed: f64,
    /// Injected background-load slowdown factor (≥ 1.0).
    pub load_factor: f64,
    /// Current activity.
    pub activity: NodeActivity,
    /// When the current activity started (for attribution).
    pub activity_since: SimTime,
    /// Local LIFO work deque (owner pushes/pops the back; thieves take the
    /// front, which holds the largest untouched subtrees). Each entry is
    /// `(task index, origin node)` — the origin spawned the task and is
    /// where its result must be returned (Satin returns results to the
    /// spawner; the iteration barrier waits for them).
    pub deque: VecDeque<(u32, NodeId)>,
    /// Statistics accumulator for the current monitoring period.
    pub stats: NodeStats,
    /// Benchmark pacing.
    pub bench: BenchmarkScheduler,
    /// Most recent measured benchmark duration.
    pub last_bench_duration: Option<SimDuration>,
    /// Whether an asynchronous wide-area steal is outstanding (CRS allows
    /// at most one).
    pub wide_outstanding: bool,
    /// Token of the most recent synchronous steal (stale-reply filtering).
    pub steal_token: u64,
    /// Consecutive failed synchronous steal attempts since last useful work.
    pub failed_attempts: u32,
    /// Consecutive times the node parked with nothing to steal; drives
    /// exponential retry back-off so a starved grid does not melt down in
    /// probe storms.
    pub consecutive_parks: u32,
    /// The coordinator asked this node to leave; it will exit at the next
    /// scheduling point.
    pub leave_requested: bool,
    /// Activity trace (recorded only when the run enables tracing).
    pub trace: Option<NodeTrace>,
}

impl SimNode {
    /// Creates an idle node joining at `now`.
    pub fn new(
        id: NodeId,
        cluster: ClusterId,
        base_speed: f64,
        now: SimTime,
        benchmark_budget: f64,
        expected_bench: SimDuration,
    ) -> Self {
        Self {
            id,
            cluster,
            base_speed,
            inv_speed: 1.0 / base_speed.max(1e-6),
            load_factor: 1.0,
            activity: NodeActivity::Waiting,
            activity_since: now,
            deque: VecDeque::new(),
            stats: NodeStats::new(id, cluster, now),
            bench: BenchmarkScheduler::new(benchmark_budget, expected_bench),
            last_bench_duration: None,
            wide_outstanding: false,
            steal_token: 0,
            failed_attempts: 0,
            consecutive_parks: 0,
            leave_requested: false,
            trace: None,
        }
    }

    /// Effective execution speed right now.
    pub fn effective_speed(&self) -> f64 {
        (self.base_speed / self.load_factor).max(1e-6)
    }

    /// Updates the background-load multiplier, refreshing the cached
    /// reciprocal speed. All post-construction speed changes go through
    /// here so `execution_time` stays division-free.
    pub fn set_load_factor(&mut self, factor: f64) {
        self.load_factor = factor;
        self.inv_speed = 1.0 / self.effective_speed();
    }

    /// Wall time this node needs for `work` defined at speed 1.0.
    pub fn execution_time(&self, work: SimDuration) -> SimDuration {
        work.mul_f64(self.inv_speed)
    }

    /// Whether the node participates in the computation.
    pub fn is_alive(&self) -> bool {
        !matches!(self.activity, NodeActivity::Gone)
    }

    /// Attributes the span since `activity_since` to the bucket matching the
    /// *current* activity, then restarts the attribution clock at `now`.
    ///
    /// Called on every activity transition and when the coordinator pulls a
    /// report mid-activity.
    pub fn flush_stats(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.activity_since);
        if elapsed > SimDuration::ZERO {
            let kind = match self.activity {
                NodeActivity::Computing { .. } => {
                    self.stats.add_busy(elapsed);
                    Some(SpanKind::Busy)
                }
                NodeActivity::Benchmarking { .. } => {
                    self.stats.add_benchmark(elapsed);
                    Some(SpanKind::Benchmark)
                }
                NodeActivity::Sending { wide, .. } | NodeActivity::SyncSteal { wide, .. } => {
                    self.stats.add_comm(elapsed, !wide);
                    Some(if wide {
                        SpanKind::InterComm
                    } else {
                        SpanKind::IntraComm
                    })
                }
                NodeActivity::Waiting => {
                    self.stats.add_idle(elapsed);
                    Some(SpanKind::Idle)
                }
                NodeActivity::Gone => None,
            };
            if let (Some(trace), Some(kind)) = (self.trace.as_mut(), kind) {
                trace.push(self.activity_since, now, kind);
            }
        }
        self.activity_since = now;
    }

    /// Transitions to a new activity at `now`, attributing the span spent in
    /// the previous one.
    pub fn transition(&mut self, now: SimTime, next: NodeActivity) {
        self.flush_stats(now);
        self.activity = next;
    }

    /// Issues a fresh synchronous-steal token.
    pub fn next_steal_token(&mut self) -> u64 {
        self.steal_token += 1;
        self.steal_token
    }

    /// Reclassifies the current `Waiting` span as communication time instead
    /// of idle time, restarting the attribution clock.
    ///
    /// Called when an asynchronous wide-area steal reply finally delivers a
    /// task to a node that was out of work: the time the node spent waiting
    /// for that transfer *is* inter-cluster communication overhead — this is
    /// precisely how an overloaded uplink becomes visible as `ic_overhead`
    /// (paper §3.3) while ordinary idle waiting (e.g. during the sequential
    /// root phase, when wide replies come back empty) does not.
    pub fn absorb_wait_as_comm(&mut self, now: SimTime, same_cluster: bool) {
        debug_assert!(matches!(self.activity, NodeActivity::Waiting));
        let elapsed = now.saturating_since(self.activity_since);
        if elapsed > SimDuration::ZERO {
            self.stats.add_comm(elapsed, same_cluster);
            if let Some(trace) = self.trace.as_mut() {
                trace.push(
                    self.activity_since,
                    now,
                    if same_cluster {
                        SpanKind::IntraComm
                    } else {
                        SpanKind::InterComm
                    },
                );
            }
        }
        self.activity_since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(now: SimTime) -> SimNode {
        SimNode::new(
            NodeId(0),
            ClusterId(0),
            1.0,
            now,
            0.05,
            SimDuration::from_secs(8),
        )
    }

    #[test]
    fn execution_time_scales_with_speed_and_load() {
        let mut n = node(SimTime::ZERO);
        let w = SimDuration::from_secs(10);
        assert_eq!(n.execution_time(w), w);
        n.base_speed = 0.5;
        n.set_load_factor(1.0);
        assert_eq!(n.execution_time(w), SimDuration::from_secs(20));
        n.set_load_factor(10.0);
        assert_eq!(n.execution_time(w), SimDuration::from_secs(200));
    }

    #[test]
    fn busy_time_attributed_on_transition() {
        let mut n = node(SimTime::ZERO);
        n.transition(
            SimTime::ZERO,
            NodeActivity::Computing {
                task: 0,
                origin: NodeId(0),
                until: SimTime::from_secs(5),
            },
        );
        n.transition(SimTime::from_secs(5), NodeActivity::Waiting);
        assert_eq!(n.stats.current().busy, SimDuration::from_secs(5));
    }

    #[test]
    fn plain_waiting_is_idle_even_with_wide_outstanding() {
        let mut n = node(SimTime::ZERO);
        n.wide_outstanding = true;
        n.transition(SimTime::ZERO, NodeActivity::Waiting);
        n.flush_stats(SimTime::from_secs(3));
        assert_eq!(n.stats.current().idle, SimDuration::from_secs(3));
        assert_eq!(n.stats.current().inter_comm, SimDuration::ZERO);
    }

    #[test]
    fn absorbed_wait_becomes_inter_comm() {
        let mut n = node(SimTime::ZERO);
        n.transition(SimTime::ZERO, NodeActivity::Waiting);
        // A wide-area steal reply with a task arrives after 3 s: the wait
        // was communication, not idleness.
        n.absorb_wait_as_comm(SimTime::from_secs(3), false);
        assert_eq!(n.stats.current().inter_comm, SimDuration::from_secs(3));
        assert_eq!(n.stats.current().idle, SimDuration::ZERO);
        // Subsequent waiting is idle again.
        n.flush_stats(SimTime::from_secs(5));
        assert_eq!(n.stats.current().idle, SimDuration::from_secs(2));
    }

    #[test]
    fn sync_steal_attribution_follows_victim_locality() {
        let mut n = node(SimTime::ZERO);
        n.transition(
            SimTime::ZERO,
            NodeActivity::SyncSteal {
                token: 1,
                wide: false,
            },
        );
        n.transition(
            SimTime::from_millis(2),
            NodeActivity::SyncSteal {
                token: 2,
                wide: true,
            },
        );
        n.transition(SimTime::from_millis(12), NodeActivity::Waiting);
        assert_eq!(n.stats.current().intra_comm, SimDuration::from_millis(2));
        assert_eq!(n.stats.current().inter_comm, SimDuration::from_millis(10));
    }

    #[test]
    fn conservation_of_time_across_mixed_activity() {
        let mut n = node(SimTime::ZERO);
        let steps: [(NodeActivity, u64); 4] = [
            (
                NodeActivity::Computing {
                    task: 0,
                    origin: NodeId(0),
                    until: SimTime::from_secs(4),
                },
                4,
            ),
            (
                NodeActivity::Benchmarking {
                    until: SimTime::from_secs(5),
                },
                1,
            ),
            (
                NodeActivity::SyncSteal {
                    token: 1,
                    wide: true,
                },
                2,
            ),
            (NodeActivity::Waiting, 3),
        ];
        let mut t = SimTime::ZERO;
        for (act, dur) in steps {
            n.transition(t, act);
            t += SimDuration::from_secs(dur);
        }
        n.flush_stats(t);
        assert_eq!(n.stats.current().total(), SimDuration::from_secs(10));
    }

    #[test]
    fn steal_tokens_are_unique_and_increasing() {
        let mut n = node(SimTime::ZERO);
        let a = n.next_steal_token();
        let b = n.next_steal_token();
        assert!(b > a);
    }
}
