//! Incrementally maintained alive-peer lists.
//!
//! The steal path used to recompute "alive peers in my cluster / anywhere /
//! in other clusters" by allocating a fresh `Vec` and scanning the global
//! alive set on *every* steal attempt — the hottest allocation in the whole
//! engine. [`PeerCache`] replaces that with per-cluster sorted member lists
//! updated on join/leave/crash, and victim selection that indexes into them
//! directly.
//!
//! Determinism contract: node ids are cluster-major over the grid, so
//! concatenating the per-cluster lists in ascending `ClusterId` order
//! reproduces the ascending-`NodeId` iteration of the old `BTreeSet` exactly.
//! Each `pick_*` draws the same single `gen_index(peer_count)` the old code
//! drew on its materialized candidate vector, so RNG consumption — and with
//! it every simulation result — is bit-identical to the scan-and-allocate
//! implementation.

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::Rng64;

/// A Fenwick (binary indexed) tree over per-cluster alive counts.
///
/// Cross-cluster victim selection needs "the `k`-th alive node in global
/// ascending order" — a linear walk over clusters is fine at 3 clusters but
/// O(15 000) per steal on a million-node grid. The tree answers prefix sums
/// and order-statistic selection in O(log #clusters).
#[derive(Clone, Debug)]
struct ClusterCounts {
    tree: Vec<usize>,
}

impl ClusterCounts {
    fn new(clusters: usize) -> Self {
        Self {
            tree: vec![0; clusters + 1],
        }
    }

    /// Adds `delta` to cluster `i`'s count.
    fn add(&mut self, i: usize, delta: isize) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as isize + delta) as usize;
            i += i & i.wrapping_neg();
        }
    }

    /// Total alive count in clusters `0..i`.
    fn prefix(&self, i: usize) -> usize {
        let mut i = i;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Locates the `k`-th (0-based) alive node in global ascending order:
    /// returns `(cluster, offset within cluster)`. `k` must be < total.
    fn select(&self, mut k: usize) -> (usize, usize) {
        let mut pos = 0;
        let mut bit = (self.tree.len() - 1).next_power_of_two();
        while bit > 0 {
            let next = pos + bit;
            if next < self.tree.len() && self.tree[next] <= k {
                k -= self.tree[next];
                pos = next;
            }
            bit >>= 1;
        }
        (pos, k)
    }
}

/// The set of alive nodes, organized per cluster for allocation-free
/// victim selection.
#[derive(Clone, Debug)]
pub struct PeerCache {
    /// Sorted alive members of each cluster (indexed by `ClusterId`).
    members: Vec<Vec<NodeId>>,
    /// Per-node alive flag (indexed by `NodeId`), for O(1) membership.
    alive: Vec<bool>,
    /// Position of each alive node within its cluster's `members` list
    /// (indexed by `NodeId`; stale while dead). Makes in-cluster victim
    /// picks O(1) instead of a binary search per steal.
    pos: Vec<u32>,
    /// Fenwick tree over per-cluster alive counts, for O(log #clusters)
    /// cross-cluster selection.
    by_cluster: ClusterCounts,
    /// Total alive count.
    count: usize,
}

impl PeerCache {
    /// An empty cache for a grid of `clusters` clusters and `nodes` total
    /// node slots.
    pub fn new(clusters: usize, nodes: usize) -> Self {
        Self {
            members: vec![Vec::new(); clusters],
            alive: vec![false; nodes],
            pos: vec![0; nodes],
            by_cluster: ClusterCounts::new(clusters),
            count: 0,
        }
    }

    /// Marks `id` alive in `cluster`. Panics if it already is.
    pub fn insert(&mut self, id: NodeId, cluster: ClusterId) {
        assert!(!self.alive[id.index()], "node {id} inserted twice");
        self.alive[id.index()] = true;
        let list = &mut self.members[cluster.0 as usize];
        let pos = list.binary_search(&id).unwrap_err();
        list.insert(pos, id);
        self.pos[id.index()] = pos as u32;
        for &m in &list[pos + 1..] {
            self.pos[m.index()] += 1;
        }
        self.by_cluster.add(cluster.0 as usize, 1);
        self.count += 1;
    }

    /// Marks `id` dead. Panics if it is not currently alive in `cluster`.
    pub fn remove(&mut self, id: NodeId, cluster: ClusterId) {
        assert!(self.alive[id.index()], "node {id} removed while dead");
        self.alive[id.index()] = false;
        let list = &mut self.members[cluster.0 as usize];
        let pos = self.pos[id.index()] as usize;
        debug_assert_eq!(list[pos], id, "cluster list out of sync");
        list.remove(pos);
        for &m in &list[pos..] {
            self.pos[m.index()] -= 1;
        }
        self.by_cluster.add(cluster.0 as usize, -1);
        self.count -= 1;
    }

    /// Whether `id` is alive.
    pub fn contains(&self, id: NodeId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no node is alive.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The lowest-id alive node (the "master" in adoption paths).
    pub fn lowest(&self) -> Option<NodeId> {
        (self.count > 0).then(|| {
            let (c, off) = self.by_cluster.select(0);
            self.members[c][off]
        })
    }

    /// Alive nodes in ascending id order (ids are cluster-major, so chaining
    /// the per-cluster lists *is* ascending order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().flatten().copied()
    }

    /// Sorted alive members of one cluster.
    pub fn members(&self, cluster: ClusterId) -> &[NodeId] {
        &self.members[cluster.0 as usize]
    }

    /// Clusters that currently have at least one alive member, ascending.
    pub fn participating_clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, _)| ClusterId(i as u16))
    }

    /// Number of alive peers of a node of `cluster` within that cluster
    /// (the node itself excluded).
    pub fn in_cluster_peers(&self, cluster: ClusterId) -> usize {
        self.members[cluster.0 as usize].len().saturating_sub(1)
    }

    /// Number of alive peers anywhere (the node itself excluded).
    pub fn peers_anywhere(&self) -> usize {
        self.count.saturating_sub(1)
    }

    /// Number of alive nodes outside `cluster`.
    pub fn other_cluster_peers(&self, cluster: ClusterId) -> usize {
        self.count - self.members[cluster.0 as usize].len()
    }

    /// Uniform random alive peer of `of` within its own `cluster`, or
    /// `None` (consuming no randomness) when it has no such peer.
    pub fn pick_in_cluster(
        &self,
        of: NodeId,
        cluster: ClusterId,
        rng: &mut impl Rng64,
    ) -> Option<NodeId> {
        let list = &self.members[cluster.0 as usize];
        let peers = list.len().checked_sub(1).filter(|&p| p > 0)?;
        let r = rng.gen_index(peers);
        let pos = self.pos[of.index()] as usize;
        Some(if r < pos { list[r] } else { list[r + 1] })
    }

    /// Uniform random alive peer of `of` anywhere on the grid, or `None`
    /// (consuming no randomness) when it has no peer.
    pub fn pick_anywhere(
        &self,
        of: NodeId,
        cluster: ClusterId,
        rng: &mut impl Rng64,
    ) -> Option<NodeId> {
        let peers = self.count.checked_sub(1).filter(|&p| p > 0)?;
        let r = rng.gen_index(peers);
        // Global ascending position of `of`, to skip it in the flat order.
        let pos = self.by_cluster.prefix(cluster.0 as usize) + self.pos[of.index()] as usize;
        let idx = if r < pos { r } else { r + 1 };
        let (c, off) = self.by_cluster.select(idx);
        Some(self.members[c][off])
    }

    /// Uniform random alive node outside `cluster`, or `None` (consuming no
    /// randomness) when every alive node is inside it.
    pub fn pick_other_cluster(&self, cluster: ClusterId, rng: &mut impl Rng64) -> Option<NodeId> {
        let remote = self.other_cluster_peers(cluster);
        if remote == 0 {
            return None;
        }
        let idx = rng.gen_index(remote);
        // Map the draw over "alive nodes not in `cluster`" onto a global
        // ascending position by skipping `cluster`'s whole block.
        let before = self.by_cluster.prefix(cluster.0 as usize);
        let global = if idx < before {
            idx
        } else {
            idx + self.members[cluster.0 as usize].len()
        };
        let (c, off) = self.by_cluster.select(global);
        Some(self.members[c][off])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::rng::Xoshiro256StarStar;
    use std::collections::BTreeSet;

    /// The old engine's recompute-from-scratch peer queries, kept as the
    /// reference model.
    struct Model {
        alive: BTreeSet<NodeId>,
        cluster_of: Vec<ClusterId>,
    }

    impl Model {
        fn in_cluster(&self, of: NodeId) -> Vec<NodeId> {
            let c = self.cluster_of[of.index()];
            self.alive
                .iter()
                .copied()
                .filter(|&n| n != of && self.cluster_of[n.index()] == c)
                .collect()
        }

        fn anywhere(&self, of: NodeId) -> Vec<NodeId> {
            self.alive.iter().copied().filter(|&n| n != of).collect()
        }

        fn other_clusters(&self, of: NodeId) -> Vec<NodeId> {
            let c = self.cluster_of[of.index()];
            self.alive
                .iter()
                .copied()
                .filter(|&n| n != of && self.cluster_of[n.index()] != c)
                .collect()
        }
    }

    /// A cluster-major grid of 4 clusters × 6 nodes, like the engine's.
    fn grid() -> (PeerCache, Model) {
        let cluster_of: Vec<ClusterId> = (0..24).map(|i| ClusterId((i / 6) as u16)).collect();
        (
            PeerCache::new(4, 24),
            Model {
                alive: BTreeSet::new(),
                cluster_of,
            },
        )
    }

    /// Randomized join/leave/crash churn: after every step the cache must
    /// agree with the recompute-from-scratch model on every query, and every
    /// victim pick must match indexing the model's materialized candidate
    /// vector with the same random draw — the exact equivalence the engine's
    /// determinism rests on.
    #[test]
    fn cache_matches_recompute_model_under_churn() {
        let (mut cache, mut model) = grid();
        let mut rng = Xoshiro256StarStar::seeded(0xC0FFEE);
        for step in 0..2_000 {
            let id = NodeId(rng.gen_index(24) as u32);
            let cluster = model.cluster_of[id.index()];
            // Join if dead, leave/crash if alive (leave and crash are the
            // same cache operation; the engine differs only in accounting).
            if model.alive.contains(&id) {
                cache.remove(id, cluster);
                model.alive.remove(&id);
            } else {
                cache.insert(id, cluster);
                model.alive.insert(id);
            }

            assert_eq!(cache.len(), model.alive.len(), "step {step}");
            assert_eq!(
                cache.lowest(),
                model.alive.iter().next().copied(),
                "step {step}"
            );
            assert_eq!(
                cache.iter().collect::<Vec<_>>(),
                model.alive.iter().copied().collect::<Vec<_>>(),
                "step {step}: global order"
            );
            let participating: BTreeSet<ClusterId> = model
                .alive
                .iter()
                .map(|&n| model.cluster_of[n.index()])
                .collect();
            assert_eq!(
                cache.participating_clusters().collect::<Vec<_>>(),
                participating.iter().copied().collect::<Vec<_>>(),
                "step {step}: participating clusters"
            );

            // Peer queries and picks, from every alive node's perspective.
            for &of in &model.alive {
                let c = model.cluster_of[of.index()];
                let local = model.in_cluster(of);
                let anywhere = model.anywhere(of);
                let remote = model.other_clusters(of);
                assert_eq!(cache.in_cluster_peers(c), local.len());
                assert_eq!(cache.peers_anywhere(), anywhere.len());
                assert_eq!(cache.other_cluster_peers(c), remote.len());

                // Same seed on both sides: the pick must equal indexing the
                // materialized vector with the same draw.
                let draw = rng.clone();
                let picked = cache.pick_in_cluster(of, c, &mut rng.clone());
                let expected =
                    (!local.is_empty()).then(|| local[draw.clone().gen_index(local.len())]);
                assert_eq!(picked, expected, "step {step}: in-cluster pick");

                let picked = cache.pick_anywhere(of, c, &mut rng.clone());
                let expected = (!anywhere.is_empty())
                    .then(|| anywhere[draw.clone().gen_index(anywhere.len())]);
                assert_eq!(picked, expected, "step {step}: anywhere pick");

                let picked = cache.pick_other_cluster(c, &mut rng.clone());
                let expected =
                    (!remote.is_empty()).then(|| remote[draw.clone().gen_index(remote.len())]);
                assert_eq!(picked, expected, "step {step}: other-cluster pick");
            }
        }
    }

    #[test]
    fn empty_picks_consume_no_randomness() {
        let (mut cache, _) = grid();
        cache.insert(NodeId(0), ClusterId(0));
        let mut rng = Xoshiro256StarStar::seeded(1);
        let before = rng.clone().next_u64();
        assert_eq!(
            cache.pick_in_cluster(NodeId(0), ClusterId(0), &mut rng),
            None
        );
        assert_eq!(cache.pick_anywhere(NodeId(0), ClusterId(0), &mut rng), None);
        assert_eq!(cache.pick_other_cluster(ClusterId(0), &mut rng), None);
        assert_eq!(rng.next_u64(), before, "no draw on empty candidate sets");
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_is_a_bug() {
        let (mut cache, _) = grid();
        cache.insert(NodeId(3), ClusterId(0));
        cache.insert(NodeId(3), ClusterId(0));
    }
}
