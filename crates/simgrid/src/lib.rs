//! # sagrid-simgrid
//!
//! The discrete-event twin of the Satin runtime at grid scale — the
//! substitution for the paper's DAS-2 testbed (DESIGN.md §2).
//!
//! Every node is a state machine executing divide-and-conquer
//! [`sagrid_core::workload::TaskTree`]s with **cluster-aware random work
//! stealing** over the [`sagrid_simnet`] network model; the nodes report
//! statistics to the *same* [`sagrid_adapt::Coordinator`] the threaded
//! runtime uses; node grants and releases flow through
//! [`sagrid_sched::ResourcePool`], and membership through
//! [`sagrid_registry::Membership`].
//!
//! The engine runs the paper's six evaluation scenarios (CPU overload,
//! shaped uplinks, cluster crashes, …) deterministically, at full 36–64-node
//! scale, in milliseconds of wall time — which is what lets the benchmark
//! harness regenerate every figure of the paper's evaluation.
//!
//! * [`config`] — simulation parameters (adaptation mode, steal policy,
//!   timing constants);
//! * [`node`] — the per-node state machine and statistics attribution;
//! * [`engine`] — the event loop wiring everything together;
//! * [`result`] — per-run results: iteration durations, decision log, node
//!   count timeline, overhead accounting;
//! * [`trace`] — optional per-node activity traces (Gantt-style spans) for
//!   debugging scenario dynamics;
//! * [`provenance`] — decision-provenance events: serialising every
//!   coordinator decision (with its badness inputs and blacklist state) to
//!   the metrics JSONL stream, and reconstructing decisions back from it.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod batch;
pub mod config;
pub mod engine;
pub mod node;
pub mod peers;
pub mod provenance;
pub mod result;
pub mod trace;

pub use config::{AdaptMode, SimConfig, StealPolicy, TimingConfig};
pub use engine::GridSim;
pub use result::RunResult;
pub use sagrid_simnet::QueueBackend;
pub use trace::{NodeTrace, SpanKind, TraceSpan};
