//! Pooled task-batch storage for slim events.
//!
//! A handful of engine events (queue hand-offs from leaving nodes, crash
//! recovery) carry *batches* — `Vec`s of task entries or victim ids. Embedding
//! a `Vec` in the event enum costs 24 bytes per variant field and drags every
//! event (steal requests included) up to that size, because an enum is as big
//! as its largest variant. [`Batches`] moves the payload out of line: the
//! event carries a 4-byte [`BatchId`] and the vectors live here, with freed
//! slots (and their heap allocations) reused round-robin, so batch-carrying
//! events allocate nothing in steady state.

/// Index of a parked batch inside a [`Batches`] pool.
pub(crate) type BatchId = u32;

/// A pool of parked `Vec<T>` payloads addressed by [`BatchId`].
#[derive(Debug)]
pub(crate) struct Batches<T> {
    store: Vec<Vec<T>>,
    free: Vec<BatchId>,
}

impl<T> Default for Batches<T> {
    fn default() -> Self {
        Self {
            store: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Batches<T> {
    /// Parks `batch`, returning the id to embed in an event.
    pub fn put(&mut self, batch: Vec<T>) -> BatchId {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.store[id as usize].is_empty());
                self.store[id as usize] = batch;
                id
            }
            None => {
                self.store.push(batch);
                (self.store.len() - 1) as BatchId
            }
        }
    }

    /// Takes the batch parked under `id`, freeing the slot (the slot's
    /// allocation is handed to the caller with the batch; the slot itself is
    /// reused).
    pub fn take(&mut self, id: BatchId) -> Vec<T> {
        let batch = std::mem::take(&mut self.store[id as usize]);
        self.free.push(id);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrips_and_reuses_slots() {
        let mut b: Batches<u32> = Batches::default();
        let a = b.put(vec![1, 2, 3]);
        let c = b.put(vec![4]);
        assert_ne!(a, c);
        assert_eq!(b.take(a), vec![1, 2, 3]);
        // The freed slot is reused for the next batch.
        let d = b.put(vec![5, 6]);
        assert_eq!(d, a);
        assert_eq!(b.take(c), vec![4]);
        assert_eq!(b.take(d), vec![5, 6]);
    }

    #[test]
    fn interleaved_batches_stay_independent() {
        let mut b: Batches<u32> = Batches::default();
        let ids: Vec<BatchId> = (0..10).map(|i| b.put(vec![i; i as usize])).collect();
        for (i, id) in ids.into_iter().enumerate().rev() {
            assert_eq!(b.take(id), vec![i as u32; i]);
        }
    }
}
