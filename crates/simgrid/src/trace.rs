//! Per-node activity traces (Gantt-style observability).
//!
//! When [`crate::SimConfig::record_trace`] is set, every node records the
//! exact spans it spent in each activity class. The trace is what you read
//! when a scenario misbehaves: it shows *where* the idle time of a starved
//! cluster sits inside the iteration, when the benchmarks ran, and how the
//! sequential root phase serializes the grid.

use sagrid_core::ids::NodeId;
use sagrid_core::time::{SimDuration, SimTime};

/// Activity classes, matching the overhead-statistics buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Useful work.
    Busy,
    /// Speed benchmark.
    Benchmark,
    /// Intra-cluster communication (local steals).
    IntraComm,
    /// Inter-cluster communication (wide steals, blocked result sends).
    InterComm,
    /// Idle.
    Idle,
}

impl SpanKind {
    /// One-letter code used in CSV exports and compact renders.
    pub fn code(self) -> char {
        match self {
            SpanKind::Busy => 'B',
            SpanKind::Benchmark => 'M',
            SpanKind::IntraComm => 'l',
            SpanKind::InterComm => 'w',
            SpanKind::Idle => '.',
        }
    }
}

/// One contiguous span of a node's time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span start.
    pub start: SimTime,
    /// Span end (`end >= start`).
    pub end: SimTime,
    /// What the node was doing.
    pub kind: SpanKind,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A node's recorded trace.
#[derive(Clone, Debug, Default)]
pub struct NodeTrace {
    spans: Vec<TraceSpan>,
}

impl NodeTrace {
    /// Appends a span, merging with the previous one when contiguous and of
    /// the same kind (flush points otherwise fragment the trace).
    pub fn push(&mut self, start: SimTime, end: SimTime, kind: SpanKind) {
        debug_assert!(end >= start);
        if let Some(last) = self.spans.last_mut() {
            if last.kind == kind && last.end == start {
                last.end = end;
                return;
            }
        }
        self.spans.push(TraceSpan { start, end, kind });
    }

    /// The recorded spans, in time order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Total time recorded under `kind`.
    pub fn total(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Checks internal consistency: spans are ordered and non-overlapping.
    pub fn is_well_formed(&self) -> bool {
        self.spans.windows(2).all(|w| w[0].end <= w[1].start)
            && self.spans.iter().all(|s| s.end >= s.start)
    }
}

/// Renders one node's trace as a CSV fragment (`node,start,end,kind`).
pub fn to_csv(node: NodeId, trace: &NodeTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in trace.spans() {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{}",
            node.0,
            s.start.as_secs_f64(),
            s.end.as_secs_f64(),
            s.kind.code()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn contiguous_same_kind_spans_merge() {
        let mut tr = NodeTrace::default();
        tr.push(t(0), t(1), SpanKind::Busy);
        tr.push(t(1), t(2), SpanKind::Busy);
        tr.push(t(2), t(3), SpanKind::Idle);
        assert_eq!(tr.spans().len(), 2);
        assert_eq!(tr.total(SpanKind::Busy), SimDuration::from_secs(2));
        assert!(tr.is_well_formed());
    }

    #[test]
    fn gaps_prevent_merging() {
        let mut tr = NodeTrace::default();
        tr.push(t(0), t(1), SpanKind::Busy);
        tr.push(t(2), t(3), SpanKind::Busy);
        assert_eq!(tr.spans().len(), 2);
        assert!(tr.is_well_formed());
    }

    #[test]
    fn csv_round_trips_basic_fields() {
        let mut tr = NodeTrace::default();
        tr.push(t(0), t(5), SpanKind::InterComm);
        let csv = to_csv(NodeId(7), &tr);
        assert_eq!(csv.trim(), "7,0.000000,5.000000,w");
    }

    #[test]
    fn totals_split_by_kind() {
        let mut tr = NodeTrace::default();
        tr.push(t(0), t(4), SpanKind::Busy);
        tr.push(t(4), t(5), SpanKind::Benchmark);
        tr.push(t(5), t(9), SpanKind::Idle);
        assert_eq!(tr.total(SpanKind::Busy), SimDuration::from_secs(4));
        assert_eq!(tr.total(SpanKind::Benchmark), SimDuration::from_secs(1));
        assert_eq!(tr.total(SpanKind::Idle), SimDuration::from_secs(4));
        assert_eq!(tr.total(SpanKind::InterComm), SimDuration::ZERO);
    }
}
