//! Node and cluster badness heuristics (paper §3.3).
//!
//! When weighted average efficiency drops below `E_MIN` the coordinator
//! removes the *worst* processors:
//!
//! ```text
//! proc_badnessᵢ    = α·(1/speedᵢ) + β·ic_overheadᵢ + γ·inWorstCluster(i)
//! cluster_badness₍c₎ = α·(1/speed₍c₎) + β·ic_overhead₍c₎
//! ```
//!
//! High inter-cluster overhead indicates insufficient bandwidth to the
//! node's cluster; removing processors from a single (the worst) cluster is
//! preferred because it reduces wide-area communication. The coefficients
//! weight the terms; the paper sets them empirically "based on the
//! observation that ic_overhead indicates bandwidth problems and processors
//! with (very low) speed do not contribute to the computation" — i.e. β
//! dominates, then γ, then α (exact numerals are fixed in
//! [`BadnessCoefficients::default`] and documented in DESIGN.md).

use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::MonitoringReport;
use std::collections::BTreeMap;

/// The α/β/γ weights of the badness formulas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BadnessCoefficients {
    /// Weight of the inverse-speed term.
    pub alpha: f64,
    /// Weight of the inter-cluster-overhead term (dominant).
    pub beta: f64,
    /// Weight of the worst-cluster membership bonus (node badness only).
    pub gamma: f64,
}

impl Default for BadnessCoefficients {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 100.0,
            gamma: 10.0,
        }
    }
}

/// Per-cluster aggregate view derived from node reports.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterView {
    /// The cluster.
    pub cluster: ClusterId,
    /// Member nodes that reported this period.
    pub nodes: Vec<NodeId>,
    /// Cluster speed: sum of member speeds, normalized to the fastest
    /// cluster (paper: "the speed of a cluster is the sum of processor
    /// speeds normalized to the speed of the fastest cluster").
    pub speed: f64,
    /// Average member inter-cluster overhead fraction.
    pub ic_overhead: f64,
}

/// Badness of one processor.
///
/// `speed` is clamped away from zero so a wedged node (speed → 0) gets a
/// huge but finite badness rather than an `inf` that would poison sorting.
pub fn node_badness(
    coeff: &BadnessCoefficients,
    speed: f64,
    ic_overhead: f64,
    in_worst_cluster: bool,
) -> f64 {
    let s = speed.max(1e-6);
    coeff.alpha / s + coeff.beta * ic_overhead + coeff.gamma * f64::from(in_worst_cluster)
}

/// Badness of one cluster (same formula sans the γ term).
pub fn cluster_badness(coeff: &BadnessCoefficients, speed: f64, ic_overhead: f64) -> f64 {
    let s = speed.max(1e-6);
    coeff.alpha / s + coeff.beta * ic_overhead
}

/// Aggregates per-node reports into per-cluster views (speed normalized to
/// the fastest cluster), sorted by cluster id for determinism.
pub fn cluster_views<'a>(
    reports: impl IntoIterator<Item = &'a MonitoringReport>,
) -> Vec<ClusterView> {
    let mut by_cluster: BTreeMap<ClusterId, (Vec<NodeId>, f64, f64)> = BTreeMap::new();
    for r in reports {
        let e = by_cluster
            .entry(r.cluster)
            .or_insert_with(|| (Vec::new(), 0.0, 0.0));
        e.0.push(r.node);
        e.1 += r.speed;
        e.2 += r.ic_overhead_fraction();
    }
    let max_speed = by_cluster
        .values()
        .map(|(_, s, _)| *s)
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    by_cluster
        .into_iter()
        .map(|(cluster, (nodes, speed_sum, ic_sum))| {
            let n = nodes.len().max(1) as f64;
            ClusterView {
                cluster,
                nodes,
                speed: speed_sum / max_speed,
                ic_overhead: ic_sum / n,
            }
        })
        .collect()
}

/// Identifies the worst cluster among the views (highest badness; ties break
/// toward the lower cluster id for determinism). Returns `None` when fewer
/// than two clusters are involved — with a single cluster there is no
/// "worst cluster" to prefer draining, and no wide-area communication at
/// all.
pub fn worst_cluster(coeff: &BadnessCoefficients, views: &[ClusterView]) -> Option<ClusterId> {
    if views.len() < 2 {
        return None;
    }
    views
        .iter()
        .max_by(|a, b| {
            let ba = cluster_badness(coeff, a.speed, a.ic_overhead);
            let bb = cluster_badness(coeff, b.speed, b.ic_overhead);
            ba.partial_cmp(&bb)
                .expect("badness is finite")
                // On ties prefer the *lower* id; max_by keeps the last
                // maximal element, so order ids descending.
                .then(b.cluster.cmp(&a.cluster))
        })
        .map(|v| v.cluster)
}

/// Ranks nodes by descending badness (worst first). Ties break toward the
/// higher node id so that, all else equal, the most recently added node is
/// removed first (it has the least warmed-up state).
pub fn rank_nodes_by_badness(
    coeff: &BadnessCoefficients,
    reports: &[MonitoringReport],
    worst: Option<ClusterId>,
) -> Vec<(NodeId, f64)> {
    let mut ranked: Vec<(NodeId, f64)> = reports
        .iter()
        .map(|r| {
            let b = node_badness(
                coeff,
                r.speed,
                r.ic_overhead_fraction(),
                Some(r.cluster) == worst,
            );
            (r.node, b)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("badness is finite")
            .then(b.0.cmp(&a.0))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::stats::OverheadBreakdown;
    use sagrid_core::time::{SimDuration, SimTime};

    fn report(id: u32, cluster: u16, speed: f64, ic_frac: f64) -> MonitoringReport {
        // Build a breakdown whose ic_overhead_fraction is exactly ic_frac.
        let total = 1_000_000u64;
        let inter = (ic_frac * total as f64) as u64;
        MonitoringReport {
            node: NodeId(id),
            cluster: ClusterId(cluster),
            period_end: SimTime::from_secs(180),
            breakdown: OverheadBreakdown {
                busy: SimDuration(total - inter),
                inter_comm: SimDuration(inter),
                ..Default::default()
            },
            speed,
        }
    }

    #[test]
    fn slow_nodes_are_worse() {
        let c = BadnessCoefficients::default();
        assert!(node_badness(&c, 0.25, 0.0, false) > node_badness(&c, 1.0, 0.0, false));
    }

    #[test]
    fn ic_overhead_dominates_speed() {
        let c = BadnessCoefficients::default();
        // A fast node behind a bad link beats a 4x-slow well-connected node.
        let bad_link = node_badness(&c, 1.0, 0.3, false);
        let slow = node_badness(&c, 0.25, 0.0, false);
        assert!(bad_link > slow);
    }

    #[test]
    fn worst_cluster_bonus_orders_equal_nodes() {
        let c = BadnessCoefficients::default();
        let in_worst = node_badness(&c, 1.0, 0.0, true);
        let elsewhere = node_badness(&c, 1.0, 0.0, false);
        assert!(in_worst > elsewhere);
        assert!((in_worst - elsewhere - c.gamma).abs() < 1e-12);
    }

    #[test]
    fn zero_speed_is_finite() {
        let c = BadnessCoefficients::default();
        let b = node_badness(&c, 0.0, 0.0, false);
        assert!(b.is_finite());
        assert!(b > node_badness(&c, 0.001, 0.0, false));
    }

    #[test]
    fn cluster_views_normalize_to_fastest_cluster() {
        let reports = vec![
            report(0, 0, 1.0, 0.0),
            report(1, 0, 1.0, 0.1),
            report(2, 1, 0.5, 0.3),
        ];
        let views = cluster_views(&reports);
        assert_eq!(views.len(), 2);
        let c0 = &views[0];
        let c1 = &views[1];
        assert_eq!(c0.cluster, ClusterId(0));
        assert!((c0.speed - 1.0).abs() < 1e-9, "fastest cluster speed = 1");
        assert!((c1.speed - 0.25).abs() < 1e-9, "0.5 / 2.0");
        assert!((c0.ic_overhead - 0.05).abs() < 1e-9);
        assert!((c1.ic_overhead - 0.3).abs() < 1e-9);
    }

    #[test]
    fn worst_cluster_is_the_badly_connected_one() {
        let c = BadnessCoefficients::default();
        let reports = vec![
            report(0, 0, 1.0, 0.02),
            report(1, 1, 1.0, 0.35), // behind a shaped uplink
            report(2, 2, 1.0, 0.03),
        ];
        let views = cluster_views(&reports);
        assert_eq!(worst_cluster(&c, &views), Some(ClusterId(1)));
    }

    #[test]
    fn single_cluster_has_no_worst() {
        let c = BadnessCoefficients::default();
        let views = cluster_views(&[report(0, 0, 1.0, 0.0)]);
        assert_eq!(worst_cluster(&c, &views), None);
    }

    #[test]
    fn ranking_puts_bad_link_nodes_first_then_slow_nodes() {
        let c = BadnessCoefficients::default();
        let reports = vec![
            report(0, 0, 1.0, 0.0),  // good
            report(1, 1, 1.0, 0.4),  // bad link
            report(2, 2, 0.3, 0.0),  // slow
            report(3, 1, 1.0, 0.45), // worse link
        ];
        let views = cluster_views(&reports);
        let worst = worst_cluster(&c, &views);
        assert_eq!(worst, Some(ClusterId(1)));
        let ranked = rank_nodes_by_badness(&c, &reports, worst);
        let ids: Vec<u32> = ranked.iter().map(|(n, _)| n.0).collect();
        assert_eq!(ids, vec![3, 1, 2, 0]);
    }

    #[test]
    fn rank_ties_break_toward_newer_nodes() {
        let c = BadnessCoefficients::default();
        let reports = vec![report(0, 0, 1.0, 0.0), report(5, 0, 1.0, 0.0)];
        let ranked = rank_nodes_by_badness(&c, &reports, None);
        assert_eq!(ranked[0].0, NodeId(5));
    }
}
