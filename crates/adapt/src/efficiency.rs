//! Efficiency metrics (paper §3.1).
//!
//! Classic parallel efficiency is the average utilization of the processors:
//!
//! ```text
//! efficiency = (1/N) Σᵢ (1 − overheadᵢ)
//! ```
//!
//! For heterogeneous resource sets the paper weights each processor's useful
//! work by its relative speed, so that "slower processors are modeled as
//! fast ones that spend a large fraction of the time being idle":
//!
//! ```text
//! wa_efficiency = (1/N) Σᵢ speedᵢ · (1 − overheadᵢ)
//! ```
//!
//! with `speedᵢ ∈ (0, 1]` relative to the fastest processor.

use sagrid_core::stats::MonitoringReport;

/// Classic homogeneous parallel efficiency from per-node overhead fractions.
///
/// Returns 0.0 for an empty slice (no processors do no useful work).
pub fn efficiency(overheads: &[f64]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    let sum: f64 = overheads.iter().map(|o| 1.0 - o.clamp(0.0, 1.0)).sum();
    sum / overheads.len() as f64
}

/// Weighted average efficiency over `(speed, overhead)` pairs.
///
/// Speeds are clamped to `(0, 1]` and overheads to `[0, 1]`; the paper's
/// normalization guarantees both, but measured data can wobble at the edges
/// (unsynchronized clocks, §3.2) and the metric must stay in `[0, 1]`.
pub fn wa_efficiency(pairs: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (speed, overhead) in pairs {
        let s = speed.clamp(f64::MIN_POSITIVE, 1.0);
        let o = overhead.clamp(0.0, 1.0);
        sum += s * (1.0 - o);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Weighted average efficiency straight from monitoring reports.
pub fn wa_efficiency_of_reports<'a>(
    reports: impl IntoIterator<Item = &'a MonitoringReport>,
) -> f64 {
    wa_efficiency(
        reports
            .into_iter()
            .map(|r| (r.speed, r.overhead_fraction())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::ids::{ClusterId, NodeId};
    use sagrid_core::stats::OverheadBreakdown;
    use sagrid_core::time::{SimDuration, SimTime};

    #[test]
    fn perfect_nodes_have_efficiency_one() {
        assert_eq!(efficiency(&[0.0, 0.0, 0.0]), 1.0);
        assert_eq!(wa_efficiency([(1.0, 0.0), (1.0, 0.0)]), 1.0);
    }

    #[test]
    fn empty_set_is_zero() {
        assert_eq!(efficiency(&[]), 0.0);
        assert_eq!(wa_efficiency(std::iter::empty()), 0.0);
    }

    #[test]
    fn efficiency_averages_overheads() {
        let e = efficiency(&[0.2, 0.4]);
        assert!((e - 0.7).abs() < 1e-12);
    }

    #[test]
    fn slow_nodes_count_less() {
        // Two fully busy nodes, one at half speed: wa_eff = (1 + 0.5)/2.
        let e = wa_efficiency([(1.0, 0.0), (0.5, 0.0)]);
        assert!((e - 0.75).abs() < 1e-12);
        // A slow busy node is indistinguishable from a fast idle-half node —
        // the paper's central modelling idea.
        let slow_busy = wa_efficiency([(0.5, 0.0)]);
        let fast_half_idle = wa_efficiency([(1.0, 0.5)]);
        assert!((slow_busy - fast_half_idle).abs() < 1e-12);
    }

    #[test]
    fn garbage_inputs_are_clamped() {
        let e = wa_efficiency([(2.0, -0.5), (0.5, 1.5)]);
        // (1.0 * 1.0 + 0.5 * 0.0) / 2
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_based_metric_matches_manual_computation() {
        let mk = |busy: u64, idle: u64, speed: f64, id: u32| MonitoringReport {
            node: NodeId(id),
            cluster: ClusterId(0),
            period_end: SimTime::from_secs(180),
            breakdown: OverheadBreakdown {
                busy: SimDuration(busy),
                idle: SimDuration(idle),
                ..Default::default()
            },
            speed,
        };
        let reports = vec![mk(80, 20, 1.0, 0), mk(60, 40, 0.5, 1)];
        let e = wa_efficiency_of_reports(&reports);
        let expected = (1.0 * 0.8 + 0.5 * 0.6) / 2.0;
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn adding_idle_nodes_lowers_wa_efficiency() {
        let busy = vec![(1.0, 0.0); 4];
        let mut with_idle = busy.clone();
        with_idle.push((1.0, 0.9));
        assert!(wa_efficiency(with_idle) < wa_efficiency(busy));
    }
}
