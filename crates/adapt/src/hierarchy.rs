//! Hierarchical coordinators (paper §7).
//!
//! "The centralized implementation of the adaptation coordinator might
//! become a bottleneck for applications running on very large numbers of
//! nodes (hundreds or thousands). This problem can be solved by
//! implementing a hierarchy of coordinators: one sub-coordinator per
//! cluster, which collects and processes statistics from its cluster, and
//! one main coordinator which collects the information from the
//! sub-coordinators."
//!
//! [`SubCoordinator`] absorbs its cluster's per-node report stream and
//! emits **one digest message per monitoring period** containing compact
//! per-node summaries (id, speed, overhead fraction, inter-cluster
//! fraction). The [`HierarchicalCoordinator`] reconstructs equivalent
//! reports from the digests and runs the ordinary [`Coordinator`] on them,
//! so its decisions are *identical* to the flat design (tested) while the
//! main coordinator receives `O(clusters)` messages per period instead of
//! `O(nodes)`.

use crate::coordinator::{Coordinator, Decision};
use crate::policy::AdaptPolicy;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Compact per-node summary inside a digest (a few dozen bytes per node,
/// versus a full statistics message per node hitting the main coordinator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSummary {
    /// The node.
    pub node: NodeId,
    /// Relative speed in `(0, 1]`.
    pub speed: f64,
    /// Total overhead fraction for the period.
    pub overhead: f64,
    /// Inter-cluster overhead fraction for the period.
    pub ic_overhead: f64,
}

/// One sub-coordinator's per-period message to the main coordinator.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterDigest {
    /// The reporting cluster.
    pub cluster: ClusterId,
    /// End of the covered monitoring period.
    pub period_end: SimTime,
    /// Per-node summaries.
    pub nodes: Vec<NodeSummary>,
}

/// Collects and condenses one cluster's statistics stream.
#[derive(Clone, Debug)]
pub struct SubCoordinator {
    cluster: ClusterId,
    pending: BTreeMap<NodeId, MonitoringReport>,
    reports_received: u64,
}

impl SubCoordinator {
    /// Creates a sub-coordinator for `cluster`.
    pub fn new(cluster: ClusterId) -> Self {
        Self {
            cluster,
            pending: BTreeMap::new(),
            reports_received: 0,
        }
    }

    /// Absorbs one member's report. Reports from foreign clusters are a
    /// wiring bug.
    pub fn record_report(&mut self, report: MonitoringReport) {
        assert_eq!(
            report.cluster, self.cluster,
            "report routed to the wrong sub-coordinator"
        );
        self.reports_received += 1;
        self.pending.insert(report.node, report);
    }

    /// A member left or died.
    pub fn node_gone(&mut self, node: NodeId) {
        self.pending.remove(&node);
    }

    /// Emits the period digest (empty clusters emit `None`). Keeps the
    /// latest reports so a node whose next report is missed is still
    /// represented — the same previous-period fallback the flat
    /// coordinator uses.
    pub fn digest(&self, period_end: SimTime) -> Option<ClusterDigest> {
        if self.pending.is_empty() {
            return None;
        }
        Some(ClusterDigest {
            cluster: self.cluster,
            period_end,
            nodes: self
                .pending
                .values()
                .map(|r| NodeSummary {
                    node: r.node,
                    speed: r.speed,
                    overhead: r.overhead_fraction(),
                    ic_overhead: r.ic_overhead_fraction(),
                })
                .collect(),
        })
    }

    /// Total member reports absorbed (the messages the main coordinator
    /// did *not* have to receive).
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }
}

/// The two-level coordinator: sub-coordinators per cluster feeding a main
/// [`Coordinator`].
#[derive(Clone, Debug)]
pub struct HierarchicalCoordinator {
    subs: BTreeMap<ClusterId, SubCoordinator>,
    main: Coordinator,
    digests_received: u64,
}

impl HierarchicalCoordinator {
    /// Creates the hierarchy with the given adaptation policy.
    pub fn new(policy: AdaptPolicy) -> Self {
        Self {
            subs: BTreeMap::new(),
            main: Coordinator::new(policy),
            digests_received: 0,
        }
    }

    /// Routes a node's report to its cluster's sub-coordinator (created on
    /// demand — clusters join as the application expands).
    pub fn record_report(&mut self, report: MonitoringReport) {
        // A fresh report is proof of life no matter which level it enters
        // at: clear any suspicion on the main coordinator immediately (the
        // digest replay at evaluation time deliberately does not).
        self.main.clear_suspect(report.node);
        self.subs
            .entry(report.cluster)
            .or_insert_with(|| SubCoordinator::new(report.cluster))
            .record_report(report);
    }

    /// Marks a member Suspect (see [`Coordinator::mark_suspect`]).
    pub fn mark_suspect(&mut self, node: NodeId) {
        self.main.mark_suspect(node);
    }

    /// Marks a batch of members Suspect.
    pub fn mark_suspects(&mut self, nodes: &[NodeId]) {
        self.main.mark_suspects(nodes);
    }

    /// Clears a suspicion after proof of life (see
    /// [`Coordinator::clear_suspect`]).
    pub fn clear_suspect(&mut self, node: NodeId) -> bool {
        self.main.clear_suspect(node)
    }

    /// Members currently under suspicion.
    pub fn suspects(&self) -> &std::collections::BTreeSet<NodeId> {
        self.main.suspects()
    }

    /// A node left or died.
    pub fn node_gone(&mut self, node: NodeId) {
        for sub in self.subs.values_mut() {
            sub.node_gone(node);
        }
        self.main.node_gone(node);
    }

    /// Forwards a bandwidth observation to the main coordinator.
    pub fn observe_uplink(&mut self, cluster: ClusterId, bps: f64) {
        self.main.observe_uplink(cluster, bps);
    }

    /// Forwards a crash notification (see [`Coordinator::record_crashed`])
    /// and keeps the sub-coordinators consistent: a fully-crashed cluster
    /// stops digesting.
    pub fn record_crashed(&mut self, nodes: &[NodeId], cluster: Option<ClusterId>) {
        for &n in nodes {
            for sub in self.subs.values_mut() {
                sub.node_gone(n);
            }
        }
        if let Some(c) = cluster {
            self.subs.remove(&c);
        }
        self.main.record_crashed(nodes, cluster);
    }

    /// One monitoring period: collect digests, reconstruct reports, run the
    /// flat flowchart. Decisions are identical to a flat coordinator fed
    /// the raw reports.
    pub fn evaluate(&mut self, now: SimTime, fastest_available_speed: Option<f64>) -> Decision {
        let digests: Vec<ClusterDigest> =
            self.subs.values().filter_map(|s| s.digest(now)).collect();
        self.digests_received += digests.len() as u64;
        for d in digests {
            for s in d.nodes {
                // A digest replays the last report each sub kept. For a
                // Suspect member that is a stale echo of a pre-silence
                // period, not proof of life — replaying it through
                // `record_report` would wrongly clear the suspicion.
                if self.main.suspects().contains(&s.node) {
                    continue;
                }
                self.main.record_report(reconstruct(d.cluster, now, s));
            }
        }
        let decision = self.main.evaluate(now, fastest_available_speed);
        // Keep the sub-coordinators consistent with removals.
        match &decision {
            Decision::RemoveNodes { nodes } | Decision::OpportunisticSwap { remove: nodes, .. } => {
                for &n in nodes {
                    for sub in self.subs.values_mut() {
                        sub.node_gone(n);
                    }
                }
            }
            Decision::RemoveCluster { cluster, .. } => {
                self.subs.remove(cluster);
            }
            _ => {}
        }
        decision
    }

    /// The inner (main) coordinator.
    pub fn main(&self) -> &Coordinator {
        &self.main
    }

    /// Replaces the badness coefficients (feedback control, paper §7).
    pub fn set_coefficients(&mut self, coefficients: crate::badness::BadnessCoefficients) {
        self.main.set_coefficients(coefficients);
    }

    /// Messages the main coordinator received (digests) versus the
    /// per-node messages it would have received in the flat design.
    pub fn message_counts(&self) -> (u64, u64) {
        let flat: u64 = self.subs.values().map(|s| s.reports_received()).sum();
        (self.digests_received, flat)
    }
}

/// Rebuilds a [`MonitoringReport`] with the digest's exact fractions:
/// weighted average efficiency and badness depend only on `speed`,
/// `overhead` and `ic_overhead`, so decisions over reconstructed reports
/// equal decisions over the originals.
fn reconstruct(cluster: ClusterId, period_end: SimTime, s: NodeSummary) -> MonitoringReport {
    const SCALE: u64 = 1_000_000_000;
    let overhead = s.overhead.clamp(0.0, 1.0);
    let ic = s.ic_overhead.clamp(0.0, overhead);
    let busy = ((1.0 - overhead) * SCALE as f64) as u64;
    let inter = (ic * SCALE as f64) as u64;
    let idle = SCALE - busy - inter;
    MonitoringReport {
        node: s.node,
        cluster,
        period_end,
        breakdown: OverheadBreakdown {
            busy: SimDuration(busy),
            idle: SimDuration(idle),
            inter_comm: SimDuration(inter),
            ..Default::default()
        },
        speed: s.speed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u32, cluster: u16, speed: f64, busy: f64, ic: f64) -> MonitoringReport {
        let total = 1_000_000u64;
        let busy_us = (busy * total as f64) as u64;
        let inter = (ic * total as f64) as u64;
        MonitoringReport {
            node: NodeId(id),
            cluster: ClusterId(cluster),
            period_end: SimTime::from_secs(180),
            breakdown: OverheadBreakdown {
                busy: SimDuration(busy_us),
                inter_comm: SimDuration(inter),
                idle: SimDuration(total - busy_us - inter),
                ..Default::default()
            },
            speed,
        }
    }

    /// Feeds the same reports to a flat and a hierarchical coordinator and
    /// checks the decisions coincide across the interesting flowchart
    /// branches.
    fn assert_equivalent(reports: Vec<MonitoringReport>) {
        let mut flat = Coordinator::new(AdaptPolicy::default());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for r in &reports {
            flat.record_report(*r);
            hier.record_report(*r);
        }
        let t = SimTime::from_secs(180);
        assert_eq!(flat.evaluate(t, None), hier.evaluate(t, None));
    }

    #[test]
    fn equivalent_on_add_branch() {
        assert_equivalent(
            (0..8)
                .map(|i| report(i, (i % 2) as u16, 1.0, 0.9, 0.0))
                .collect(),
        );
    }

    #[test]
    fn equivalent_on_remove_branch() {
        let mut rs: Vec<_> = (0..6).map(|i| report(i, 0, 1.0, 0.3, 0.0)).collect();
        rs.push(report(6, 1, 0.05, 0.3, 0.0));
        rs.push(report(7, 1, 0.05, 0.3, 0.0));
        assert_equivalent(rs);
    }

    #[test]
    fn equivalent_on_cluster_removal_branch() {
        let mut rs: Vec<_> = (0..4).map(|i| report(i, 0, 1.0, 0.6, 0.01)).collect();
        rs.extend((4..8).map(|i| report(i, 1, 1.0, 0.2, 0.4)));
        assert_equivalent(rs);
    }

    #[test]
    fn equivalent_on_no_action_branch() {
        assert_equivalent(
            (0..6)
                .map(|i| report(i, (i % 3) as u16, 1.0, 0.4, 0.01))
                .collect(),
        );
    }

    /// The hold-fire branch is identical across the two designs: with a
    /// member Suspect, neither shrinks, and both record the hold in the
    /// decision log.
    #[test]
    fn equivalent_on_hold_fire_branch() {
        let mut flat = Coordinator::new(AdaptPolicy::default());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        let rs: Vec<_> = (0..4).map(|i| report(i, 0, 1.0, 0.1, 0.0)).collect();
        for r in &rs {
            flat.record_report(*r);
            hier.record_report(*r);
        }
        flat.mark_suspect(NodeId(3));
        hier.mark_suspect(NodeId(3));
        let t = SimTime::from_secs(180);
        assert_eq!(flat.evaluate(t, None), hier.evaluate(t, None));
        assert_eq!(flat.evaluate(t, None), Decision::None);
        let fe = flat.log().last().unwrap();
        let he = hier.main().log().last().unwrap();
        assert!(fe.hold_fire.is_some() && he.hold_fire.is_some());
        assert_eq!(fe.suspect_ids, he.suspect_ids);
        // A fresh report entering at the hierarchy's edge clears the
        // suspicion just as a direct report to the flat design does.
        flat.record_report(rs[3]);
        hier.record_report(rs[3]);
        assert!(flat.suspects().is_empty() && hier.suspects().is_empty());
    }

    #[test]
    fn message_counts_show_the_aggregation_win() {
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        // 3 clusters × 40 nodes, 4 periods.
        for period in 1..=4u64 {
            for i in 0..120u32 {
                let mut r = report(i, (i % 3) as u16, 1.0, 0.4, 0.0);
                r.period_end = SimTime::from_secs(180 * period);
                hier.record_report(r);
            }
            let _ = hier.evaluate(SimTime::from_secs(180 * period), None);
        }
        let (digests, flat_msgs) = hier.message_counts();
        assert_eq!(
            flat_msgs, 480,
            "the flat design would see one msg/node/period"
        );
        assert_eq!(digests, 12, "the hierarchy sees one digest/cluster/period");
    }

    #[test]
    fn removed_cluster_stops_digesting() {
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for i in 0..4 {
            hier.record_report(report(i, 0, 1.0, 0.6, 0.01));
        }
        for i in 4..8 {
            hier.record_report(report(i, 1, 1.0, 0.2, 0.4));
        }
        let d = hier.evaluate(SimTime::from_secs(180), None);
        assert!(matches!(d, Decision::RemoveCluster { cluster, .. } if cluster == ClusterId(1)));
        // Next period: only cluster 0 digests.
        let before = hier.message_counts().0;
        let _ = hier.evaluate(SimTime::from_secs(360), None);
        assert_eq!(hier.message_counts().0 - before, 1);
    }

    #[test]
    #[should_panic(expected = "wrong sub-coordinator")]
    fn misrouted_report_panics() {
        let mut sub = SubCoordinator::new(ClusterId(0));
        sub.record_report(report(0, 1, 1.0, 0.5, 0.0));
    }
}
