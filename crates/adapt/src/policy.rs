//! Adaptation policy: thresholds and sizing (paper §3.3).
//!
//! Eager, Zahorjan & Lazowska proved that at the *optimal* number of
//! processors (the knee of the efficiency/execution-time trade-off) the
//! efficiency is at least 0.5 — "therefore adding processors when efficiency
//! is ≤ 0.5 will only decrease the system utilization without significant
//! performance gains". The coordinator therefore grows above `E_MAX = 0.5`
//! and shrinks below `E_MIN = 0.3` (low efficiency indicates performance
//! problems such as low bandwidth or overloaded processors; removing the bad
//! processors is beneficial, and even when the cause is simply "too many
//! processors", removing some does not harm the application).
//!
//! The paper specifies only monotonicity for the grow/shrink sizes ("the
//! higher the efficiency, the more processors are requested"; "the lower the
//! efficiency, the more nodes are removed"); the concrete proportional rules
//! used here are documented in DESIGN.md.

use crate::badness::BadnessCoefficients;
use sagrid_core::time::SimDuration;

/// All tunables of the adaptation strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptPolicy {
    /// Shrink threshold: remove nodes when `wa_efficiency < e_min`.
    pub e_min: f64,
    /// Grow threshold: add nodes when `wa_efficiency > e_max`.
    pub e_max: f64,
    /// Badness formula coefficients.
    pub coefficients: BadnessCoefficients,
    /// A cluster whose average inter-cluster overhead exceeds this fraction
    /// is removed wholesale (its uplink bandwidth is insufficient).
    pub exceptional_ic_overhead: f64,
    /// Robustness condition on the exceptional-cluster rule: the worst
    /// cluster's ic-overhead must also be at least this factor above the
    /// second-worst cluster's. When wide-area overhead is high *everywhere*
    /// the problem is over-parallelism, not one bad uplink, and the
    /// proportional shrink path handles it instead.
    pub exceptional_ic_dominance: f64,
    /// Length of a monitoring period.
    pub monitoring_period: SimDuration,
    /// Benchmarking is throttled so its overhead stays below this fraction
    /// of each node's time (paper §3.2: the programmer specifies "the
    /// maximal overhead it is allowed to cause").
    pub benchmark_overhead_budget: f64,
    /// Future-work optimization (§3.2/§7): "combine benchmarking with
    /// monitoring the load of the processor, which would allow us to avoid
    /// running the benchmark if no change in processor load is detected".
    /// Off by default, exactly as in the paper; the ablation bench turns it
    /// on and measures the overhead reduction.
    pub load_aware_benchmarking: bool,
    /// Multiplier on the proportional grow size — how eagerly the
    /// coordinator chases high efficiency ("the higher the efficiency, the
    /// more processors are requested").
    pub growth_factor: f64,
    /// Cap on how many nodes one grow decision may request.
    pub max_growth_per_period: usize,
    /// When shrinking, *all* nodes whose badness exceeds this multiple of
    /// the median badness are removed (beyond the proportional count): the
    /// paper's scenario 3 removes every overloaded node after one period,
    /// so "remove the worst" extends to every clear outlier.
    pub badness_outlier_factor: f64,
    /// Never shrink the computation below this many nodes.
    pub min_nodes: usize,
    /// Remove removed resources from future consideration (paper §3.3:
    /// "currently we use blacklisting").
    pub blacklist_removed: bool,
    /// Future-work extension (§7): when efficiency sits between the
    /// thresholds but strictly faster nodes are available, migrate onto
    /// them. Off by default, exactly as in the paper ("we are currently not
    /// able to perform opportunistic migration"); the ablation bench turns
    /// it on.
    pub opportunistic_migration: bool,
    /// Opportunistic migration only triggers when the available nodes are at
    /// least this factor faster than the slowest node in use.
    pub opportunistic_speed_margin: f64,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        Self {
            e_min: 0.30,
            e_max: 0.50,
            coefficients: BadnessCoefficients::default(),
            exceptional_ic_overhead: 0.08,
            exceptional_ic_dominance: 1.5,
            monitoring_period: SimDuration::from_secs(180),
            benchmark_overhead_budget: 0.05,
            load_aware_benchmarking: false,
            growth_factor: 2.0,
            max_growth_per_period: 16,
            badness_outlier_factor: 3.0,
            min_nodes: 1,
            blacklist_removed: true,
            opportunistic_migration: false,
            opportunistic_speed_margin: 1.5,
        }
    }
}

impl AdaptPolicy {
    /// Validates internal consistency (thresholds ordered, fractions in
    /// range). Call after hand-constructing a policy.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.e_min) || !(0.0..=1.0).contains(&self.e_max) {
            return Err("thresholds must lie in [0,1]".into());
        }
        if self.e_min >= self.e_max {
            return Err(format!(
                "e_min ({}) must be below e_max ({})",
                self.e_min, self.e_max
            ));
        }
        if !(0.0..=1.0).contains(&self.exceptional_ic_overhead) {
            return Err("exceptional_ic_overhead must lie in [0,1]".into());
        }
        if self.exceptional_ic_dominance < 1.0 {
            return Err("exceptional_ic_dominance must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.benchmark_overhead_budget) {
            return Err("benchmark_overhead_budget must lie in [0,1)".into());
        }
        if self.monitoring_period == SimDuration::ZERO {
            return Err("monitoring period must be positive".into());
        }
        if self.min_nodes == 0 {
            return Err("min_nodes must be at least 1".into());
        }
        if self.badness_outlier_factor <= 1.0 {
            return Err("badness_outlier_factor must exceed 1".into());
        }
        if self.growth_factor <= 0.0 {
            return Err("growth_factor must be positive".into());
        }
        Ok(())
    }

    /// How many nodes to request when `wa_eff > e_max`, given the current
    /// node count. Monotonically increasing in `wa_eff`, at least 1, at most
    /// `max_growth_per_period`.
    pub fn grow_size(&self, wa_eff: f64, current_nodes: usize) -> usize {
        debug_assert!(wa_eff > self.e_max);
        let ratio = (wa_eff / self.e_max - 1.0) * self.growth_factor;
        let raw = (current_nodes as f64 * ratio).ceil() as usize;
        raw.clamp(1, self.max_growth_per_period)
    }

    /// How many nodes to remove when `wa_eff < e_min`. Monotonically
    /// increasing as the efficiency drops, at least 1, and never taking the
    /// computation below `min_nodes`.
    pub fn shrink_size(&self, wa_eff: f64, current_nodes: usize) -> usize {
        debug_assert!(wa_eff < self.e_min);
        let ratio = 1.0 - (wa_eff / self.e_min).clamp(0.0, 1.0);
        let raw = (current_nodes as f64 * ratio).ceil() as usize;
        let removable = current_nodes.saturating_sub(self.min_nodes);
        if removable == 0 {
            return 0;
        }
        raw.clamp(1, removable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid_and_matches_paper_thresholds() {
        let p = AdaptPolicy::default();
        p.validate().expect("default policy valid");
        assert_eq!(p.e_max, 0.5);
        assert_eq!(p.e_min, 0.3);
        assert!(!p.opportunistic_migration, "paper: not supported yet");
    }

    #[test]
    fn validation_catches_inverted_thresholds() {
        let p = AdaptPolicy {
            e_min: 0.6,
            e_max: 0.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_period_and_min_nodes() {
        let p = AdaptPolicy {
            monitoring_period: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = AdaptPolicy {
            min_nodes: 0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn grow_is_monotone_in_efficiency() {
        let p = AdaptPolicy::default();
        let a = p.grow_size(0.55, 20);
        let b = p.grow_size(0.75, 20);
        let c = p.grow_size(0.95, 20);
        assert!(a <= b && b <= c);
        assert!(a >= 1);
    }

    #[test]
    fn grow_near_threshold_asks_for_one() {
        let p = AdaptPolicy::default();
        assert_eq!(p.grow_size(0.5001, 10), 1);
    }

    #[test]
    fn grow_is_capped() {
        let p = AdaptPolicy::default();
        assert_eq!(p.grow_size(1.0, 100), p.max_growth_per_period);
    }

    #[test]
    fn shrink_is_monotone_as_efficiency_drops() {
        let p = AdaptPolicy::default();
        let a = p.shrink_size(0.25, 20);
        let b = p.shrink_size(0.15, 20);
        let c = p.shrink_size(0.05, 20);
        assert!(a <= b && b <= c);
        assert!(a >= 1);
    }

    #[test]
    fn shrink_never_goes_below_min_nodes() {
        let p = AdaptPolicy {
            min_nodes: 4,
            ..Default::default()
        };
        assert_eq!(p.shrink_size(0.01, 5), 1);
        assert_eq!(p.shrink_size(0.01, 4), 0);
    }

    #[test]
    fn shrink_of_large_set_is_proportional() {
        let p = AdaptPolicy::default();
        // wa_eff = 0.15 → remove half.
        assert_eq!(p.shrink_size(0.15, 40), 20);
    }
}
