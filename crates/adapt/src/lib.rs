//! # sagrid-adapt
//!
//! The paper's contribution (§3): **model-free resource selection and
//! adaptation**. No analytical performance model is required; instead the
//! application is started on an arbitrary resource set, an *adaptation
//! coordinator* periodically collects per-node statistics, derives the
//! application's requirements from them, and grows or shrinks the resource
//! set to keep the **weighted average efficiency** between two thresholds.
//!
//! Module map (one module per concept in the paper):
//!
//! * [`mod@efficiency`] — §3.1: parallel efficiency and its heterogeneous
//!   extension, weighted average efficiency;
//! * [`monitor`] — §3.2: application monitoring — benchmark scheduling
//!   under an overhead budget, and relative-speed normalization;
//! * [`badness`] — §3.3: the node- and cluster-badness heuristics;
//! * [`policy`] — §3.3: thresholds (`E_MIN`/`E_MAX` from Eager et al.'s
//!   speedup-versus-efficiency result), grow/shrink sizing, and the
//!   future-work extensions (opportunistic migration, fastest-first);
//! * [`coordinator`] — §3.3 + Figure 2: the adaptation coordinator state
//!   machine, including exceptional-cluster removal, blacklisting, and
//!   learned bandwidth requirements;
//! * [`bandwidth`] — §3.3: effective-bandwidth estimation from measured
//!   data-transfer times (feeds the learned requirements);
//! * [`hierarchy`] — §7 future work: one sub-coordinator per cluster
//!   aggregating its statistics stream into a single digest per period;
//! * [`feedback`] — §7 future work: feedback control refining the badness
//!   coefficients from the effectiveness of past decisions.
//!
//! Everything here is a pure state machine over
//! [`sagrid_core::stats::MonitoringReport`]s — both the threaded runtime and
//! the discrete-event grid emulation drive the *same* coordinator code
//! (DESIGN.md §5.1).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod badness;
pub mod bandwidth;
pub mod coordinator;
pub mod efficiency;
pub mod feedback;
pub mod hierarchy;
pub mod monitor;
pub mod policy;

pub use badness::{cluster_badness, node_badness, BadnessCoefficients, ClusterView};
pub use bandwidth::BandwidthEstimator;
pub use coordinator::{Coordinator, Decision, DecisionLogEntry, NodeBadnessRecord};
pub use efficiency::{efficiency, wa_efficiency, wa_efficiency_of_reports};
pub use feedback::{DominantTerm, FeedbackTuner};
pub use hierarchy::{ClusterDigest, HierarchicalCoordinator, SubCoordinator};
pub use monitor::{BenchmarkScheduler, SpeedTracker};
pub use policy::AdaptPolicy;
