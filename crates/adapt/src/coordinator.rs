//! The adaptation coordinator (paper §3.3, Figure 2).
//!
//! An extra process added to the computation. It periodically collects
//! [`MonitoringReport`]s from the application processors, computes the
//! weighted average efficiency, and walks the flowchart of Figure 2:
//!
//! ```text
//!   collect statistics
//!   compute wa_efficiency E
//!   if a cluster's ic_overhead is exceptionally high → remove that cluster
//!   if E > E_MAX → request (more) nodes; prefer faster ones if available
//!   if E < E_MIN → rank nodes by badness, remove the worst
//!   otherwise    → no action (unless opportunistic migration is enabled)
//! ```
//!
//! The coordinator *learns* application requirements along the way: removed
//! resources are blacklisted, and each removed badly-connected cluster
//! tightens the lower bound on the bandwidth the application needs, which is
//! passed to the scheduler on subsequent requests.

use crate::badness::{cluster_views, node_badness, worst_cluster};
use crate::efficiency::wa_efficiency_of_reports;
use crate::policy::AdaptPolicy;
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::MonitoringReport;
use sagrid_core::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Requirements the coordinator has learned and passes to the scheduler.
/// (Mirrors `sagrid_sched::Requirements`; kept separate so this crate stays
/// engine- and scheduler-agnostic.)
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LearnedRequirements {
    /// Lower bound on site uplink bandwidth (bytes/s).
    pub min_uplink_bps: Option<f64>,
    /// Lower bound on node speed (used by opportunistic migration).
    pub min_speed: Option<f64>,
}

/// What the coordinator wants the engine/scheduler to do after one
/// evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Efficiency within thresholds (or no data yet): leave the set alone.
    None,
    /// Efficiency above `E_MAX`: request `count` extra nodes.
    Add {
        /// How many nodes to request.
        count: usize,
        /// Learned requirements to pass to the scheduler.
        requirements: LearnedRequirements,
        /// Clusters the application already occupies (locality preference).
        prefer: Vec<ClusterId>,
    },
    /// Efficiency below `E_MIN`: remove these (worst-first) nodes.
    RemoveNodes {
        /// Nodes to signal out of the computation, worst first.
        nodes: Vec<NodeId>,
    },
    /// A cluster's inter-cluster overhead is exceptionally high: drop the
    /// whole site.
    RemoveCluster {
        /// The badly-connected cluster.
        cluster: ClusterId,
        /// Its (reporting) member nodes.
        nodes: Vec<NodeId>,
    },
    /// Opportunistic migration (future-work extension, off by default):
    /// faster nodes exist — add replacements, then retire the slow nodes.
    OpportunisticSwap {
        /// Slow nodes to retire once replacements have joined.
        remove: Vec<NodeId>,
        /// Number of replacement nodes to request.
        add: usize,
        /// Requirements ensuring replacements are actually faster.
        requirements: LearnedRequirements,
    },
}

impl Decision {
    /// Short human-readable tag for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::None => "none",
            Decision::Add { .. } => "add",
            Decision::RemoveNodes { .. } => "remove-nodes",
            Decision::RemoveCluster { .. } => "remove-cluster",
            Decision::OpportunisticSwap { .. } => "opportunistic-swap",
        }
    }
}

/// The badness inputs of one node at evaluation time — the provenance of
/// a removal decision. Captures exactly the terms the badness formula
/// consumed, so a decision can be audited (or re-derived) from the log
/// alone.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeBadnessRecord {
    /// The node.
    pub node: NodeId,
    /// Its cluster.
    pub cluster: ClusterId,
    /// Measured relative speed (the α term's input).
    pub speed: f64,
    /// Inter-cluster overhead fraction (the β term's input).
    pub ic_overhead: f64,
    /// Whether the node sat in the worst cluster (the γ term's input).
    pub in_worst_cluster: bool,
    /// The resulting badness value.
    pub badness: f64,
}

/// One line of the coordinator's decision log (drives the experiment
/// reports' event annotations, e.g. "badly connected cluster removed").
///
/// Beyond the decision itself, each entry is a full provenance record:
/// the per-node badness terms that ranked the candidates, the blacklist
/// contents *after* the decision was applied (the delta against the
/// previous entry shows what this decision added), and the learned
/// requirements in force. A decision is reconstructible from this entry
/// alone — and from the JSONL stream the engine emits for it.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionLogEntry {
    /// When the evaluation happened.
    pub at: SimTime,
    /// Weighted average efficiency at that moment.
    pub wa_efficiency: f64,
    /// Number of nodes that contributed reports.
    pub nodes: usize,
    /// The decision taken.
    pub decision: Decision,
    /// Badness inputs per reporting node, ranked worst-first (the order
    /// removal candidates were considered in). Empty when no reports.
    pub badness: Vec<NodeBadnessRecord>,
    /// Blacklisted nodes after this decision (sorted).
    pub blacklisted_nodes: Vec<NodeId>,
    /// Blacklisted clusters after this decision (sorted).
    pub blacklisted_clusters: Vec<ClusterId>,
    /// Learned requirements after this decision.
    pub learned: LearnedRequirements,
    /// Members that were Suspect (silent but not yet declared dead) when
    /// this evaluation ran (sorted). Their reports were excluded from the
    /// efficiency denominator and the badness ranking.
    pub suspect_ids: Vec<NodeId>,
    /// When a removal decision was withheld because suspicion was
    /// outstanding, the human-readable reason; `None` otherwise. A
    /// `Some` here always pairs with `Decision::None`.
    pub hold_fire: Option<String>,
}

/// The adaptation coordinator state machine.
///
/// ```
/// use sagrid_adapt::{AdaptPolicy, Coordinator, Decision};
/// use sagrid_core::ids::{ClusterId, NodeId};
/// use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
/// use sagrid_core::time::{SimDuration, SimTime};
///
/// let mut coordinator = Coordinator::new(AdaptPolicy::default());
/// // Four fully-busy nodes report in: efficiency is ~1.0, far above
/// // E_MAX = 0.5, so the coordinator asks the scheduler for more nodes.
/// for i in 0..4 {
///     coordinator.record_report(MonitoringReport {
///         node: NodeId(i),
///         cluster: ClusterId(0),
///         period_end: SimTime::from_secs(180),
///         breakdown: OverheadBreakdown {
///             busy: SimDuration::from_secs(180),
///             ..Default::default()
///         },
///         speed: 1.0,
///     });
/// }
/// match coordinator.evaluate(SimTime::from_secs(180), None) {
///     Decision::Add { count, .. } => assert!(count >= 1),
///     other => panic!("expected growth, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Coordinator {
    policy: AdaptPolicy,
    /// Latest report per live node. The paper: when the coordinator misses a
    /// node's data at a period boundary it simply uses the previous report.
    latest: BTreeMap<NodeId, MonitoringReport>,
    blacklisted_nodes: BTreeSet<NodeId>,
    blacklisted_clusters: BTreeSet<ClusterId>,
    /// Engine-supplied observations of per-cluster uplink bandwidth
    /// (measured from data transfer times, §3.3).
    uplink_observations: BTreeMap<ClusterId, f64>,
    learned: LearnedRequirements,
    log: Vec<DecisionLogEntry>,
    /// Members whose liveness is currently unresolved: the failure
    /// detector has seen suspicious silence but has not yet promoted them
    /// to dead. Their stale reports must not poison the efficiency
    /// denominator, and no shrink may fire while this set is non-empty
    /// (the hold-fire rule) — removal would otherwise target survivors
    /// on the basis of a disturbance that is still being resolved.
    suspects: BTreeSet<NodeId>,
}

impl Coordinator {
    /// Creates a coordinator with the given policy. Panics on an invalid
    /// policy — a misconfigured coordinator silently produces wrong
    /// adaptation, which is worse than failing fast.
    pub fn new(policy: AdaptPolicy) -> Self {
        policy.validate().expect("invalid adaptation policy");
        Self {
            policy,
            latest: BTreeMap::new(),
            blacklisted_nodes: BTreeSet::new(),
            blacklisted_clusters: BTreeSet::new(),
            uplink_observations: BTreeMap::new(),
            learned: LearnedRequirements::default(),
            log: Vec::new(),
            suspects: BTreeSet::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AdaptPolicy {
        &self.policy
    }

    /// Replaces the badness coefficients (feedback control, paper §7).
    pub fn set_coefficients(&mut self, coefficients: crate::badness::BadnessCoefficients) {
        self.policy.coefficients = coefficients;
    }

    /// Stores a node's end-of-period report (overwrites the previous one).
    /// A fresh report from a Suspect member is proof of life: the
    /// suspicion is cleared in place.
    pub fn record_report(&mut self, report: MonitoringReport) {
        self.suspects.remove(&report.node);
        self.latest.insert(report.node, report);
    }

    /// Forgets a node that left or died.
    pub fn node_gone(&mut self, node: NodeId) {
        self.latest.remove(&node);
        self.suspects.remove(&node);
    }

    /// Marks a member as Suspect: the failure detector has observed
    /// suspicious silence but has not yet declared it dead. The member's
    /// stale report stops counting toward the efficiency denominator and
    /// no shrink decision fires until the suspicion resolves (a fresh
    /// report / [`Self::clear_suspect`] confirms life, or
    /// [`Self::record_crashed`] / [`Self::node_gone`] confirms death).
    pub fn mark_suspect(&mut self, node: NodeId) {
        // Deliberately unconditional: a member can fall silent before its
        // first report ever arrives, and its unresolved liveness must
        // still hold fire.
        self.suspects.insert(node);
    }

    /// Marks a batch of members Suspect (mass-crash detection windows).
    pub fn mark_suspects(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            self.mark_suspect(node);
        }
    }

    /// Clears a suspicion after the member proved to be alive (resumed
    /// heartbeats). Returns whether the node was actually suspect. The
    /// member is NOT blacklisted — suspicion is not a verdict.
    pub fn clear_suspect(&mut self, node: NodeId) -> bool {
        self.suspects.remove(&node)
    }

    /// Members currently under suspicion.
    pub fn suspects(&self) -> &BTreeSet<NodeId> {
        &self.suspects
    }

    /// Records a bandwidth observation for a cluster's uplink (bytes/s),
    /// estimated from data-transfer times during the computation.
    pub fn observe_uplink(&mut self, cluster: ClusterId, bps: f64) {
        self.uplink_observations.insert(cluster, bps);
    }

    /// Nodes currently known (reported at least once and not gone).
    pub fn known_nodes(&self) -> usize {
        self.latest.len()
    }

    /// Iterates over the latest report per live node.
    pub fn latest_reports(&self) -> impl Iterator<Item = &MonitoringReport> {
        self.latest.values()
    }

    /// The learned application requirements so far.
    pub fn learned_requirements(&self) -> LearnedRequirements {
        self.learned
    }

    /// Blacklisted nodes (never to be re-added).
    pub fn blacklisted_nodes(&self) -> &BTreeSet<NodeId> {
        &self.blacklisted_nodes
    }

    /// Blacklisted clusters.
    pub fn blacklisted_clusters(&self) -> &BTreeSet<ClusterId> {
        &self.blacklisted_clusters
    }

    /// The full decision log.
    pub fn log(&self) -> &[DecisionLogEntry] {
        &self.log
    }

    /// Weighted average efficiency over the currently known reports,
    /// excluding Suspect members — efficiency is only defined over
    /// members confirmed alive.
    pub fn current_wa_efficiency(&self) -> f64 {
        wa_efficiency_of_reports(
            self.latest
                .values()
                .filter(|r| !self.suspects.contains(&r.node)),
        )
    }

    /// One walk of the Figure-2 flowchart.
    ///
    /// `fastest_available_speed` is the scheduler's advertisement of the
    /// best relative speed among currently *free* nodes; it is only
    /// consulted when the opportunistic-migration extension is enabled
    /// (the paper's grid schedulers could not provide such notifications —
    /// ours can, which is exactly the §7 future-work experiment).
    pub fn evaluate(&mut self, now: SimTime, fastest_available_speed: Option<f64>) -> Decision {
        // Suspicion-aware monitoring: only members confirmed alive feed
        // the efficiency denominator and the badness ranking. A Suspect
        // member's stale report would otherwise drag wa_efficiency down
        // and make the flowchart shrink away survivors during the
        // crash-detection window.
        let reports: Vec<MonitoringReport> = self
            .latest
            .values()
            .filter(|r| !self.suspects.contains(&r.node))
            .copied()
            .collect();
        if reports.is_empty() {
            let hold_fire = (!self.suspects.is_empty()).then(|| {
                format!(
                    "no alive-confirmed reports: all {} known members are suspect",
                    self.suspects.len()
                )
            });
            return self.log_and_return(now, 0.0, 0, Vec::new(), Decision::None, hold_fire);
        }
        let wa_eff = wa_efficiency_of_reports(&reports);
        let n = reports.len();

        // Step 1: exceptional inter-cluster overhead ⇒ the uplink bandwidth
        // to that cluster is insufficient; remove the whole cluster rather
        // than computing node badness (paper §3.3). Only meaningful when
        // the application spans more than one cluster.
        let views = cluster_views(&reports);
        // Provenance: the badness terms of every reporting node at this
        // instant, ranked worst-first — the exact inputs a removal decision
        // considers, captured whether or not one is taken.
        let worst = worst_cluster(&self.policy.coefficients, &views);
        let provenance = badness_provenance(&self.policy.coefficients, &reports, worst);
        if views.len() >= 2 {
            let second_worst_ic = {
                let mut ics: Vec<f64> = views.iter().map(|v| v.ic_overhead).collect();
                ics.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                ics.get(1).copied().unwrap_or(0.0)
            };
            if let Some(bad) = views
                .iter()
                .filter(|v| {
                    v.ic_overhead > self.policy.exceptional_ic_overhead
                        && v.ic_overhead >= second_worst_ic * self.policy.exceptional_ic_dominance
                })
                .max_by(|a, b| {
                    a.ic_overhead
                        .partial_cmp(&b.ic_overhead)
                        .expect("overheads are finite")
                        .then(b.cluster.cmp(&a.cluster))
                })
            {
                let cluster = bad.cluster;
                let nodes = bad.nodes.clone();
                // Hold-fire: removal decisions wait out unresolved
                // silence. Checked before any side effect so a withheld
                // decision leaves no blacklist or report-set trace.
                if let Some(reason) = self.hold_fire_reason("remove-cluster") {
                    return self.log_and_return(
                        now,
                        wa_eff,
                        n,
                        provenance,
                        Decision::None,
                        Some(reason),
                    );
                }
                if self.policy.blacklist_removed {
                    self.blacklisted_clusters.insert(cluster);
                }
                // Learn the bandwidth requirement: the application needs
                // strictly more than this cluster's uplink provided.
                if let Some(&bw) = self.uplink_observations.get(&cluster) {
                    let bound = self.learned.min_uplink_bps.unwrap_or(0.0).max(bw);
                    self.learned.min_uplink_bps = Some(bound);
                }
                for node in &nodes {
                    self.latest.remove(node);
                }
                return self.log_and_return(
                    now,
                    wa_eff,
                    n,
                    provenance,
                    Decision::RemoveCluster { cluster, nodes },
                    None,
                );
            }
        }

        // Step 2: efficiency above E_MAX ⇒ the application can use more
        // processors; ask the scheduler, preferring sites we already occupy.
        if wa_eff > self.policy.e_max {
            let count = self.policy.grow_size(wa_eff, n);
            let mut prefer: Vec<ClusterId> = reports.iter().map(|r| r.cluster).collect();
            prefer.sort_unstable();
            prefer.dedup();
            let decision = Decision::Add {
                count,
                requirements: self.learned,
                prefer,
            };
            // Growth is safe during a suspicion window — adding capacity
            // never amputates a survivor — so Add is NOT held.
            return self.log_and_return(now, wa_eff, n, provenance, decision, None);
        }

        // Step 3: efficiency below E_MIN ⇒ performance problem (or simply
        // too many processors); rank nodes by badness and remove the worst.
        // The removal set is the proportional count, extended to cover every
        // clear badness *outlier* (more than `badness_outlier_factor` × the
        // median): when one cluster's processors are overloaded, all of them
        // go in one decision, as in the paper's scenario 3.
        if wa_eff < self.policy.e_min {
            if let Some(reason) = self.hold_fire_reason("remove-nodes") {
                return self.log_and_return(
                    now,
                    wa_eff,
                    n,
                    provenance,
                    Decision::None,
                    Some(reason),
                );
            }
            let count = self.policy.shrink_size(wa_eff, n);
            if count == 0 {
                return self.log_and_return(now, wa_eff, n, provenance, Decision::None, None);
            }
            let median = provenance[provenance.len() / 2].badness;
            let outliers = provenance
                .iter()
                .take_while(|p| p.badness > median * self.policy.badness_outlier_factor)
                .count();
            let removable = n.saturating_sub(self.policy.min_nodes);
            let count = count.max(outliers).min(removable);
            let nodes: Vec<NodeId> = provenance.iter().take(count).map(|p| p.node).collect();
            if self.policy.blacklist_removed {
                self.blacklisted_nodes.extend(nodes.iter().copied());
            }
            for node in &nodes {
                self.latest.remove(node);
            }
            return self.log_and_return(
                now,
                wa_eff,
                n,
                provenance,
                Decision::RemoveNodes { nodes },
                None,
            );
        }

        // Step 4 (extension, §7): efficiency is acceptable, but distinctly
        // faster nodes are available — opportunistic migration.
        if self.policy.opportunistic_migration {
            if let Some(avail) = fastest_available_speed {
                let margin = self.policy.opportunistic_speed_margin;
                let mut slow: Vec<(NodeId, f64)> = reports
                    .iter()
                    .filter(|r| r.speed * margin < avail)
                    .map(|r| (r.node, r.speed))
                    .collect();
                if !slow.is_empty() {
                    if let Some(reason) = self.hold_fire_reason("opportunistic-swap") {
                        return self.log_and_return(
                            now,
                            wa_eff,
                            n,
                            provenance,
                            Decision::None,
                            Some(reason),
                        );
                    }
                    // Slowest first; cap at the growth budget.
                    slow.sort_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .expect("speeds are finite")
                            .then(a.0.cmp(&b.0))
                    });
                    slow.truncate(self.policy.max_growth_per_period);
                    let remove: Vec<NodeId> = slow.iter().map(|&(id, _)| id).collect();
                    let add = remove.len();
                    let mut requirements = self.learned;
                    // Replacements must beat the best node we are retiring.
                    let fastest_removed = slow.iter().map(|&(_, s)| s).fold(0.0_f64, f64::max);
                    requirements.min_speed = Some(fastest_removed * margin);
                    for node in &remove {
                        self.latest.remove(node);
                    }
                    let decision = Decision::OpportunisticSwap {
                        remove,
                        add,
                        requirements,
                    };
                    return self.log_and_return(now, wa_eff, n, provenance, decision, None);
                }
            }
        }

        self.log_and_return(now, wa_eff, n, provenance, Decision::None, None)
    }

    /// The hold-fire rule (suspicion-aware shrink): while any member's
    /// liveness is unresolved, removal decisions are withheld. Returns
    /// the reason string to record in the decision's provenance, or
    /// `None` when firing is allowed.
    fn hold_fire_reason(&self, withheld_kind: &str) -> Option<String> {
        if self.suspects.is_empty() {
            return None;
        }
        Some(format!(
            "withheld {withheld_kind}: {} member(s) suspect, liveness unresolved",
            self.suspects.len()
        ))
    }

    /// Notes that `nodes` crashed (fail-stop failure, paper §5 scenario 6).
    ///
    /// Crashed resources are treated like removed ones: their reports are
    /// dropped and — under the default blacklisting policy — they are
    /// blacklisted so the scheduler never hands them back. When an entire
    /// cluster went down at once, `cluster` blacklists the whole site:
    /// re-adding survivors of a failed site would just invite the next
    /// fault-detection round-trip.
    pub fn record_crashed(&mut self, nodes: &[NodeId], cluster: Option<ClusterId>) {
        for node in nodes {
            self.latest.remove(node);
            self.suspects.remove(node);
            if self.policy.blacklist_removed {
                self.blacklisted_nodes.insert(*node);
            }
        }
        if let Some(c) = cluster {
            if self.policy.blacklist_removed {
                self.blacklisted_clusters.insert(c);
            }
        }
    }

    fn log_and_return(
        &mut self,
        at: SimTime,
        wa_efficiency: f64,
        nodes: usize,
        badness: Vec<NodeBadnessRecord>,
        decision: Decision,
        hold_fire: Option<String>,
    ) -> Decision {
        self.log.push(DecisionLogEntry {
            at,
            wa_efficiency,
            nodes,
            decision: decision.clone(),
            badness,
            blacklisted_nodes: self.blacklisted_nodes.iter().copied().collect(),
            blacklisted_clusters: self.blacklisted_clusters.iter().copied().collect(),
            learned: self.learned,
            suspect_ids: self.suspects.iter().copied().collect(),
            hold_fire,
        });
        decision
    }
}

/// Computes the full badness provenance for one evaluation: every node's
/// formula inputs and result, ranked worst-first with the same tie-break
/// as [`crate::badness::rank_nodes_by_badness`] (higher node id first).
fn badness_provenance(
    coeff: &crate::badness::BadnessCoefficients,
    reports: &[MonitoringReport],
    worst: Option<ClusterId>,
) -> Vec<NodeBadnessRecord> {
    let mut records: Vec<NodeBadnessRecord> = reports
        .iter()
        .map(|r| {
            let ic = r.ic_overhead_fraction();
            let in_worst = Some(r.cluster) == worst;
            NodeBadnessRecord {
                node: r.node,
                cluster: r.cluster,
                speed: r.speed,
                ic_overhead: ic,
                in_worst_cluster: in_worst,
                badness: node_badness(coeff, r.speed, ic, in_worst),
            }
        })
        .collect();
    records.sort_by(|a, b| {
        b.badness
            .partial_cmp(&a.badness)
            .expect("badness is finite")
            .then(b.node.cmp(&a.node))
    });
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use sagrid_core::stats::OverheadBreakdown;
    use sagrid_core::time::SimDuration;

    /// Builds a report with the given busy fraction split so that
    /// `ic_frac` of the period is inter-cluster overhead and the rest of the
    /// overhead is idle time.
    fn report(id: u32, cluster: u16, speed: f64, busy_frac: f64, ic_frac: f64) -> MonitoringReport {
        let total = 1_000_000u64;
        let busy = (busy_frac * total as f64) as u64;
        let inter = (ic_frac * total as f64) as u64;
        assert!(busy + inter <= total);
        MonitoringReport {
            node: NodeId(id),
            cluster: ClusterId(cluster),
            period_end: SimTime::from_secs(180),
            breakdown: OverheadBreakdown {
                busy: SimDuration(busy),
                inter_comm: SimDuration(inter),
                idle: SimDuration(total - busy - inter),
                ..Default::default()
            },
            speed,
        }
    }

    fn coordinator() -> Coordinator {
        Coordinator::new(AdaptPolicy::default())
    }

    #[test]
    fn no_reports_means_no_action() {
        let mut c = coordinator();
        assert_eq!(c.evaluate(SimTime::ZERO, None), Decision::None);
        assert_eq!(c.log().len(), 1);
    }

    #[test]
    fn efficiency_in_band_means_no_action() {
        let mut c = coordinator();
        // busy 0.4, overhead 0.6 → wa_eff = 0.4, inside (0.3, 0.5).
        for i in 0..4 {
            c.record_report(report(i, 0, 1.0, 0.4, 0.0));
        }
        assert_eq!(c.evaluate(SimTime::ZERO, None), Decision::None);
    }

    #[test]
    fn high_efficiency_adds_nodes_preferring_current_clusters() {
        let mut c = coordinator();
        for i in 0..8 {
            c.record_report(report(i, (i % 2) as u16, 1.0, 0.9, 0.0));
        }
        match c.evaluate(SimTime::ZERO, None) {
            Decision::Add {
                count,
                prefer,
                requirements,
            } => {
                // wa_eff = 0.9 → grow by the policy's sizing rule.
                assert_eq!(count, AdaptPolicy::default().grow_size(0.9, 8));
                assert_eq!(prefer, vec![ClusterId(0), ClusterId(1)]);
                assert_eq!(requirements, LearnedRequirements::default());
            }
            d => panic!("expected Add, got {d:?}"),
        }
    }

    #[test]
    fn low_efficiency_removes_worst_nodes_and_blacklists() {
        let mut c = coordinator();
        // 3 good nodes, 1 very slow node: wa_eff = (3*0.25 + 0.1*0.25)/4 …
        // craft busy fractions so wa_eff < 0.3.
        c.record_report(report(0, 0, 1.0, 0.3, 0.0));
        c.record_report(report(1, 0, 1.0, 0.3, 0.0));
        c.record_report(report(2, 1, 1.0, 0.3, 0.0));
        c.record_report(report(3, 1, 0.1, 0.3, 0.0)); // slow node
        let wa = c.current_wa_efficiency();
        assert!(wa < 0.3, "test setup: wa_eff {wa} must be below e_min");
        match c.evaluate(SimTime::ZERO, None) {
            Decision::RemoveNodes { nodes } => {
                assert!(!nodes.is_empty());
                // The slow node must be the first removed.
                assert_eq!(nodes[0], NodeId(3));
                assert!(c.blacklisted_nodes().contains(&NodeId(3)));
                // Removed nodes drop out of the report set.
                assert!(c.known_nodes() < 4);
            }
            d => panic!("expected RemoveNodes, got {d:?}"),
        }
    }

    #[test]
    fn exceptional_ic_overhead_removes_whole_cluster() {
        let mut c = coordinator();
        // Cluster 1 sits behind a shaped uplink: 40% inter-cluster overhead.
        c.record_report(report(0, 0, 1.0, 0.6, 0.02));
        c.record_report(report(1, 0, 1.0, 0.6, 0.02));
        c.record_report(report(2, 1, 1.0, 0.2, 0.4));
        c.record_report(report(3, 1, 1.0, 0.2, 0.45));
        c.observe_uplink(ClusterId(1), 100_000.0);
        match c.evaluate(SimTime::ZERO, None) {
            Decision::RemoveCluster { cluster, nodes } => {
                assert_eq!(cluster, ClusterId(1));
                assert_eq!(nodes, vec![NodeId(2), NodeId(3)]);
                assert!(c.blacklisted_clusters().contains(&ClusterId(1)));
                // Bandwidth requirement learned from the observation.
                assert_eq!(c.learned_requirements().min_uplink_bps, Some(100_000.0));
                assert_eq!(c.known_nodes(), 2);
            }
            d => panic!("expected RemoveCluster, got {d:?}"),
        }
    }

    #[test]
    fn cluster_removal_takes_priority_over_thresholds() {
        let mut c = coordinator();
        // Very high efficiency overall, but one cluster is badly connected:
        // Figure 2 checks the exceptional cluster first.
        c.record_report(report(0, 0, 1.0, 0.95, 0.0));
        c.record_report(report(1, 1, 1.0, 0.6, 0.4));
        let d = c.evaluate(SimTime::ZERO, None);
        assert!(matches!(d, Decision::RemoveCluster { .. }), "got {d:?}");
    }

    #[test]
    fn single_cluster_never_removed_wholesale() {
        let mut c = coordinator();
        // One cluster with (bogus) high inter-cluster overhead reading:
        // no second cluster exists, so wholesale removal is impossible.
        c.record_report(report(0, 0, 1.0, 0.4, 0.4));
        let d = c.evaluate(SimTime::ZERO, None);
        assert!(!matches!(d, Decision::RemoveCluster { .. }), "got {d:?}");
    }

    #[test]
    fn learned_bandwidth_bound_tightens_monotonically() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 1.0, 0.6, 0.02));
        c.record_report(report(1, 1, 1.0, 0.2, 0.4));
        c.observe_uplink(ClusterId(1), 50_000.0);
        let _ = c.evaluate(SimTime::ZERO, None);
        assert_eq!(c.learned_requirements().min_uplink_bps, Some(50_000.0));
        // A second bad cluster with an even slower uplink must not loosen
        // the bound.
        c.record_report(report(2, 2, 1.0, 0.2, 0.5));
        c.observe_uplink(ClusterId(2), 20_000.0);
        let _ = c.evaluate(SimTime::from_secs(180), None);
        assert_eq!(c.learned_requirements().min_uplink_bps, Some(50_000.0));
    }

    #[test]
    fn add_passes_learned_requirements_to_scheduler() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 1.0, 0.6, 0.02));
        c.record_report(report(1, 1, 1.0, 0.2, 0.4));
        c.observe_uplink(ClusterId(1), 100_000.0);
        let _ = c.evaluate(SimTime::ZERO, None); // removes cluster 1
                                                 // Survivor now runs at high efficiency → Add with the learned bound.
        match c.evaluate(SimTime::from_secs(180), None) {
            Decision::Add { requirements, .. } => {
                assert_eq!(requirements.min_uplink_bps, Some(100_000.0));
            }
            d => panic!("expected Add, got {d:?}"),
        }
    }

    #[test]
    fn opportunistic_migration_disabled_by_default() {
        let mut c = coordinator();
        for i in 0..4 {
            c.record_report(report(i, 0, 0.5, 0.8, 0.0));
        }
        // wa_eff = 0.4, in band; fast nodes available — but the paper's
        // default cannot migrate opportunistically.
        assert_eq!(c.evaluate(SimTime::ZERO, Some(1.0)), Decision::None);
    }

    #[test]
    fn opportunistic_migration_swaps_slow_nodes_when_enabled() {
        let policy = AdaptPolicy {
            opportunistic_migration: true,
            ..Default::default()
        };
        let mut c = Coordinator::new(policy);
        c.record_report(report(0, 0, 1.0, 0.42, 0.0));
        c.record_report(report(1, 0, 0.5, 0.8, 0.0)); // slow
        c.record_report(report(2, 0, 0.45, 0.8, 0.0)); // slower
        let wa = c.current_wa_efficiency();
        assert!(wa > 0.3 && wa < 0.5, "in band: {wa}");
        match c.evaluate(SimTime::ZERO, Some(1.0)) {
            Decision::OpportunisticSwap {
                remove,
                add,
                requirements,
            } => {
                assert_eq!(remove, vec![NodeId(2), NodeId(1)], "slowest first");
                assert_eq!(add, 2);
                let min = requirements.min_speed.unwrap();
                assert!(min > 0.5, "replacements must beat the retired nodes");
            }
            d => panic!("expected OpportunisticSwap, got {d:?}"),
        }
    }

    #[test]
    fn opportunistic_margin_prevents_thrashing() {
        let policy = AdaptPolicy {
            opportunistic_migration: true,
            opportunistic_speed_margin: 1.5,
            ..Default::default()
        };
        let mut c = Coordinator::new(policy);
        // Node at 0.8 speed; available 1.0 < 0.8*1.5 → no swap.
        c.record_report(report(0, 0, 0.8, 0.5, 0.0));
        c.record_report(report(1, 0, 1.0, 0.42, 0.0));
        assert_eq!(c.evaluate(SimTime::ZERO, Some(1.0)), Decision::None);
    }

    #[test]
    fn decision_log_records_every_evaluation() {
        let mut c = coordinator();
        for i in 0..4 {
            c.record_report(report(i, 0, 1.0, 0.9, 0.0));
        }
        let _ = c.evaluate(SimTime::from_secs(180), None);
        let _ = c.evaluate(SimTime::from_secs(360), None);
        assert_eq!(c.log().len(), 2);
        assert_eq!(c.log()[0].decision.kind(), "add");
        assert_eq!(c.log()[0].nodes, 4);
        assert!(c.log()[0].wa_efficiency > 0.5);
    }

    #[test]
    fn log_entries_carry_full_provenance() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 1.0, 0.6, 0.02));
        c.record_report(report(1, 1, 1.0, 0.2, 0.4));
        c.observe_uplink(ClusterId(1), 100_000.0);
        let _ = c.evaluate(SimTime::ZERO, None); // removes cluster 1
        let entry = &c.log()[0];
        // The badness terms of both reporting nodes, worst first.
        assert_eq!(entry.badness.len(), 2);
        assert_eq!(entry.badness[0].node, NodeId(1));
        assert!(entry.badness[0].in_worst_cluster);
        assert!(entry.badness[0].badness > entry.badness[1].badness);
        assert!((entry.badness[0].ic_overhead - 0.4).abs() < 1e-6);
        // Post-decision blacklist and learned state are snapshotted.
        assert_eq!(entry.blacklisted_clusters, vec![ClusterId(1)]);
        assert!(entry.blacklisted_nodes.is_empty());
        assert_eq!(entry.learned.min_uplink_bps, Some(100_000.0));
        // A removal decision's victims are exactly the top of the ranking.
        match &entry.decision {
            Decision::RemoveCluster { nodes, .. } => {
                assert_eq!(nodes, &vec![NodeId(1)]);
            }
            d => panic!("expected RemoveCluster, got {d:?}"),
        }
    }

    #[test]
    fn crashed_nodes_and_clusters_are_blacklisted() {
        let mut c = coordinator();
        for i in 0..4 {
            c.record_report(report(i, (i % 2) as u16, 1.0, 0.4, 0.0));
        }
        c.record_crashed(&[NodeId(1), NodeId(3)], Some(ClusterId(1)));
        assert_eq!(c.known_nodes(), 2);
        assert!(c.blacklisted_nodes().contains(&NodeId(1)));
        assert!(c.blacklisted_nodes().contains(&NodeId(3)));
        assert!(c.blacklisted_clusters().contains(&ClusterId(1)));
        // Node-only crashes don't blacklist a cluster.
        c.record_crashed(&[NodeId(0)], None);
        assert!(!c.blacklisted_clusters().contains(&ClusterId(0)));
    }

    #[test]
    fn crash_blacklisting_respects_policy_switch() {
        let mut c = Coordinator::new(AdaptPolicy {
            blacklist_removed: false,
            ..Default::default()
        });
        c.record_report(report(0, 0, 1.0, 0.4, 0.0));
        c.record_crashed(&[NodeId(0)], Some(ClusterId(0)));
        assert!(c.blacklisted_nodes().is_empty());
        assert!(c.blacklisted_clusters().is_empty());
        assert_eq!(c.known_nodes(), 0, "reports still dropped");
    }

    /// The PR-9 bug, distilled: a mass crash leaves stale reports from the
    /// dead and collapsed efficiency on the survivors. Without suspicion
    /// the flowchart shrinks — and badness ranks the (slower) survivors
    /// worst, so the decision amputates exactly the nodes still alive.
    #[test]
    fn silence_blind_policy_shrinks_survivors_in_the_detection_window() {
        let mut c = coordinator();
        // Nodes 2,3 (fast) crashed mid-thrash; their last reports linger.
        // Survivors 0,1 (slower) report collapsed efficiency.
        c.record_report(report(0, 0, 0.5, 0.05, 0.0));
        c.record_report(report(1, 0, 0.5, 0.05, 0.0));
        c.record_report(report(2, 0, 1.0, 0.1, 0.0));
        c.record_report(report(3, 0, 1.0, 0.1, 0.0));
        match c.evaluate(SimTime::ZERO, None) {
            Decision::RemoveNodes { nodes } => {
                // The victims are the survivors, not the dead.
                assert!(
                    nodes.contains(&NodeId(0)) || nodes.contains(&NodeId(1)),
                    "expected a survivor among the victims, got {nodes:?}"
                );
            }
            d => panic!("the silence-blind policy should shrink, got {d:?}"),
        }
    }

    /// Same window, suspicion-aware: the dead-but-undetected members are
    /// Suspect, their reports leave the denominator, and the hold-fire
    /// rule withholds the shrink until liveness resolves.
    #[test]
    fn hold_fire_withholds_shrink_while_suspects_outstanding() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 0.5, 0.05, 0.0));
        c.record_report(report(1, 0, 0.5, 0.05, 0.0));
        c.record_report(report(2, 0, 1.0, 0.1, 0.0));
        c.record_report(report(3, 0, 1.0, 0.1, 0.0));
        c.mark_suspects(&[NodeId(2), NodeId(3)]);
        assert_eq!(c.evaluate(SimTime::ZERO, None), Decision::None);
        let entry = c.log().last().unwrap();
        assert_eq!(entry.suspect_ids, vec![NodeId(2), NodeId(3)]);
        assert!(entry.hold_fire.is_some(), "provenance records the hold");
        assert_eq!(entry.nodes, 2, "denominator counts alive-confirmed only");
        assert!(
            c.blacklisted_nodes().is_empty(),
            "a hold has no side effects"
        );
        // The detector resolves the silence into deaths: suspicion clears,
        // the next evaluation is free to act on the survivors alone.
        c.record_crashed(&[NodeId(2), NodeId(3)], None);
        assert!(c.suspects().is_empty());
        let d = c.evaluate(SimTime::from_secs(180), None);
        assert!(
            c.log().last().unwrap().hold_fire.is_none(),
            "no hold once resolved, got {d:?}"
        );
    }

    /// When every known member is suspect there is nothing confirmed
    /// alive to evaluate: no action, and the hold is recorded.
    #[test]
    fn all_members_suspect_holds_with_empty_denominator() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 1.0, 0.1, 0.0));
        c.mark_suspect(NodeId(0));
        assert_eq!(c.evaluate(SimTime::ZERO, None), Decision::None);
        let entry = c.log().last().unwrap();
        assert_eq!(entry.nodes, 0);
        assert!(entry.hold_fire.is_some());
    }

    /// A Suspect member that resumes reporting is alive: suspicion clears
    /// in place and it is never blacklisted for having been silent.
    #[test]
    fn resumed_report_clears_suspicion_without_blacklist() {
        let mut c = coordinator();
        for i in 0..4 {
            c.record_report(report(i, 0, 1.0, 0.4, 0.0));
        }
        c.mark_suspect(NodeId(2));
        assert!(c.suspects().contains(&NodeId(2)));
        c.record_report(report(2, 0, 1.0, 0.4, 0.0));
        assert!(c.suspects().is_empty(), "a fresh report is proof of life");
        assert!(c.blacklisted_nodes().is_empty());
        assert_eq!(c.known_nodes(), 4);
    }

    /// Flapping (repeated Suspect → Alive) never triggers a shrink and
    /// never blacklists the flapper: every window either holds fire or
    /// sees a healthy, fully-confirmed report set.
    #[test]
    fn flapping_suspicion_never_triggers_shrink() {
        let mut c = coordinator();
        let mut t = SimTime::ZERO;
        for round in 0..5 {
            for i in 0..4 {
                c.record_report(report(i, 0, 1.0, 0.4, 0.0));
            }
            c.mark_suspect(NodeId(3));
            let d = c.evaluate(t, None);
            assert_eq!(d, Decision::None, "round {round}: suspect window");
            // The flapper resumes before the next period.
            c.record_report(report(3, 0, 1.0, 0.4, 0.0));
            t += sagrid_core::time::SimDuration::from_secs(180);
            let d = c.evaluate(t, None);
            assert_eq!(d, Decision::None, "round {round}: healthy in-band set");
            t += sagrid_core::time::SimDuration::from_secs(180);
        }
        assert!(c.blacklisted_nodes().is_empty());
        assert!(c
            .log()
            .iter()
            .all(|e| !matches!(e.decision, Decision::RemoveNodes { .. })));
    }

    #[test]
    fn node_gone_drops_reports() {
        let mut c = coordinator();
        c.record_report(report(0, 0, 1.0, 0.4, 0.0));
        c.record_report(report(1, 0, 1.0, 0.4, 0.0));
        c.node_gone(NodeId(0));
        assert_eq!(c.known_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid adaptation policy")]
    fn invalid_policy_is_rejected_at_construction() {
        let _ = Coordinator::new(AdaptPolicy {
            e_min: 0.9,
            e_max: 0.5,
            ..Default::default()
        });
    }
}
