//! Bandwidth estimation from observed transfer times (paper §3.3).
//!
//! "The bandwidth between each pair of clusters is estimated during the
//! computation by measuring data transfer times, and the bandwidth to the
//! removed cluster is set as a minimum requirement." The engines feed
//! every wide-area payload transfer (bytes, elapsed) into this estimator;
//! the coordinator reads per-cluster effective-bandwidth estimates from it
//! when it learns requirements.
//!
//! The estimate is an exponentially weighted moving average of
//! `bytes / elapsed` per *cluster endpoint* (a transfer between clusters A
//! and B is charged to both: the shaped uplink dominates whichever side it
//! is on, and the coordinator only ever consults the estimate of the
//! cluster it is about to remove). Elapsed times include queueing delay,
//! so a congested link reads *lower* than its physical rate — which is
//! exactly the application-observed bandwidth the requirement should
//! encode.

use sagrid_core::ids::ClusterId;
use sagrid_core::time::SimDuration;
use std::collections::BTreeMap;

/// EWMA effective-bandwidth estimator, per cluster.
#[derive(Clone, Debug)]
pub struct BandwidthEstimator {
    /// Smoothing factor in `(0, 1]`: weight of the newest observation.
    alpha: f64,
    /// Current estimate (bytes/second) and observation count per cluster.
    estimates: BTreeMap<ClusterId, (f64, u64)>,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl BandwidthEstimator {
    /// Creates an estimator with the given EWMA smoothing factor.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self {
            alpha,
            estimates: BTreeMap::new(),
        }
    }

    /// Records one wide-area transfer touching `cluster`'s uplink.
    /// Transfers too small or too fast to resolve (sub-microsecond) are
    /// ignored — they carry no bandwidth signal, only latency.
    pub fn observe(&mut self, cluster: ClusterId, bytes: u64, elapsed: SimDuration) {
        if bytes < 1024 || elapsed == SimDuration::ZERO {
            return;
        }
        let sample = bytes as f64 / elapsed.as_secs_f64();
        let entry = self.estimates.entry(cluster).or_insert((sample, 0));
        entry.0 = if entry.1 == 0 {
            sample
        } else {
            self.alpha * sample + (1.0 - self.alpha) * entry.0
        };
        entry.1 += 1;
    }

    /// Current effective-bandwidth estimate for `cluster` (bytes/second),
    /// or `None` before any observation.
    pub fn estimate(&self, cluster: ClusterId) -> Option<f64> {
        self.estimates.get(&cluster).map(|&(bw, _)| bw)
    }

    /// Number of observations recorded for `cluster`.
    pub fn observations(&self, cluster: ClusterId) -> u64 {
        self.estimates.get(&cluster).map_or(0, |&(_, n)| n)
    }

    /// Forgets a cluster (it was removed and blacklisted).
    pub fn forget(&mut self, cluster: ClusterId) {
        self.estimates.remove(&cluster);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn estimates_simple_rate() {
        let mut e = BandwidthEstimator::new(0.5);
        e.observe(ClusterId(0), 100_000, secs(1.0));
        assert!((e.estimate(ClusterId(0)).unwrap() - 100_000.0).abs() < 1.0);
        assert_eq!(e.observations(ClusterId(0)), 1);
    }

    #[test]
    fn ewma_converges_toward_new_rate() {
        let mut e = BandwidthEstimator::new(0.5);
        e.observe(ClusterId(1), 1_000_000, secs(1.0)); // 1 MB/s
        for _ in 0..20 {
            e.observe(ClusterId(1), 100_000, secs(1.0)); // 100 KB/s
        }
        let bw = e.estimate(ClusterId(1)).unwrap();
        assert!(
            (bw - 100_000.0).abs() / 100_000.0 < 0.01,
            "estimate {bw} should converge to the shaped rate"
        );
    }

    #[test]
    fn queueing_lowers_the_estimate() {
        // Two identical transfers, the second delayed by queueing: its
        // sample is lower and drags the EWMA down.
        let mut e = BandwidthEstimator::new(0.5);
        e.observe(ClusterId(2), 100_000, secs(1.0));
        e.observe(ClusterId(2), 100_000, secs(10.0));
        let bw = e.estimate(ClusterId(2)).unwrap();
        assert!(bw < 100_000.0);
        assert!(bw > 10_000.0);
    }

    #[test]
    fn tiny_messages_are_ignored() {
        let mut e = BandwidthEstimator::default();
        e.observe(ClusterId(0), 64, secs(0.001));
        assert_eq!(e.estimate(ClusterId(0)), None);
    }

    #[test]
    fn clusters_are_independent_and_forgettable() {
        let mut e = BandwidthEstimator::default();
        e.observe(ClusterId(0), 1_000_000, secs(1.0));
        e.observe(ClusterId(1), 100_000, secs(1.0));
        assert!(e.estimate(ClusterId(0)).unwrap() > e.estimate(ClusterId(1)).unwrap());
        e.forget(ClusterId(1));
        assert_eq!(e.estimate(ClusterId(1)), None);
        assert!(e.estimate(ClusterId(0)).is_some());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = BandwidthEstimator::new(0.0);
    }
}
