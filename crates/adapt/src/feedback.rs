//! Feedback control over the badness coefficients (paper §7).
//!
//! "Another line of research … is using feedback control to refine the
//! adaptation strategy during the application run: the node badness
//! formula could be refined at runtime based on the effectiveness of the
//! previous adaptation decisions."
//!
//! Concrete rule implemented here (documented interpretation): after every
//! node-removal decision the tuner compares the next period's weighted
//! average efficiency with the one that triggered the removal.
//!
//! * If removing nodes that were flagged mainly by their **inter-cluster
//!   overhead** (β-dominant) failed to improve efficiency, the bandwidth
//!   hypothesis was wrong — shift weight from β to α (speed problems).
//! * Symmetrically, an ineffective **speed-dominant** (α) removal shifts
//!   weight toward β.
//! * Effective removals reinforce nothing: the formula already works.
//!
//! Coefficients move multiplicatively and are clamped to a bounded range
//! around their initial values, so a run of unlucky periods cannot wedge
//! the formula.

use crate::badness::BadnessCoefficients;

/// Which badness term contributed most to the removed nodes' scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominantTerm {
    /// `α / speed` dominated: the nodes looked slow.
    Speed,
    /// `β · ic_overhead` dominated: the nodes looked badly connected.
    IcOverhead,
}

/// Classifies a removed node's badness contributions.
pub fn dominant_term(coeff: &BadnessCoefficients, speed: f64, ic_overhead: f64) -> DominantTerm {
    let speed_term = coeff.alpha / speed.max(1e-6);
    let ic_term = coeff.beta * ic_overhead;
    if ic_term >= speed_term {
        DominantTerm::IcOverhead
    } else {
        DominantTerm::Speed
    }
}

/// Multiplicative-weights tuner over (α, β).
#[derive(Clone, Debug)]
pub struct FeedbackTuner {
    initial: BadnessCoefficients,
    /// Minimum efficiency gain for a removal to count as effective.
    min_gain: f64,
    /// Multiplicative step per ineffective decision.
    step: f64,
    /// Clamp: coefficients stay within `initial / bound .. initial * bound`.
    bound: f64,
}

impl FeedbackTuner {
    /// Creates a tuner anchored at `initial` coefficients.
    pub fn new(initial: BadnessCoefficients) -> Self {
        Self {
            initial,
            min_gain: 0.02,
            step: 1.5,
            bound: 8.0,
        }
    }

    /// Updates `coeff` after observing the efficiency before and after a
    /// node-removal decision whose removed nodes were flagged mainly by
    /// `dominant`. Returns `true` when the coefficients changed.
    pub fn update(
        &self,
        coeff: &mut BadnessCoefficients,
        dominant: DominantTerm,
        eff_before: f64,
        eff_after: f64,
    ) -> bool {
        if eff_after - eff_before >= self.min_gain {
            return false; // the removal worked; leave the formula alone
        }
        match dominant {
            DominantTerm::IcOverhead => {
                coeff.beta /= self.step;
                coeff.alpha *= self.step;
            }
            DominantTerm::Speed => {
                coeff.alpha /= self.step;
                coeff.beta *= self.step;
            }
        }
        coeff.alpha = coeff.alpha.clamp(
            self.initial.alpha / self.bound,
            self.initial.alpha * self.bound,
        );
        coeff.beta = coeff.beta.clamp(
            self.initial.beta / self.bound,
            self.initial.beta * self.bound,
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_dominant_terms() {
        let c = BadnessCoefficients::default();
        // Very slow, well-connected node: speed term dominates.
        assert_eq!(dominant_term(&c, 0.05, 0.01), DominantTerm::Speed);
        // Fast node behind a bad link: ic term dominates.
        assert_eq!(dominant_term(&c, 1.0, 0.3), DominantTerm::IcOverhead);
    }

    #[test]
    fn effective_removals_leave_coefficients_alone() {
        let tuner = FeedbackTuner::new(BadnessCoefficients::default());
        let mut c = BadnessCoefficients::default();
        let before = c;
        let changed = tuner.update(&mut c, DominantTerm::IcOverhead, 0.25, 0.55);
        assert!(!changed);
        assert_eq!(c, before);
    }

    #[test]
    fn ineffective_ic_removals_shift_weight_to_speed() {
        let tuner = FeedbackTuner::new(BadnessCoefficients::default());
        let mut c = BadnessCoefficients::default();
        let changed = tuner.update(&mut c, DominantTerm::IcOverhead, 0.25, 0.26);
        assert!(changed);
        assert!(c.beta < BadnessCoefficients::default().beta);
        assert!(c.alpha > BadnessCoefficients::default().alpha);
    }

    #[test]
    fn ineffective_speed_removals_shift_weight_to_ic() {
        let tuner = FeedbackTuner::new(BadnessCoefficients::default());
        let mut c = BadnessCoefficients::default();
        tuner.update(&mut c, DominantTerm::Speed, 0.25, 0.24);
        assert!(c.alpha < BadnessCoefficients::default().alpha);
        assert!(c.beta > BadnessCoefficients::default().beta);
    }

    #[test]
    fn coefficients_stay_bounded_under_repeated_failures() {
        let initial = BadnessCoefficients::default();
        let tuner = FeedbackTuner::new(initial);
        let mut c = initial;
        for _ in 0..100 {
            tuner.update(&mut c, DominantTerm::IcOverhead, 0.2, 0.2);
        }
        assert!(c.alpha <= initial.alpha * 8.0 + 1e-9);
        assert!(c.beta >= initial.beta / 8.0 - 1e-9);
        // Flip direction: must be able to come back.
        for _ in 0..100 {
            tuner.update(&mut c, DominantTerm::Speed, 0.2, 0.2);
        }
        assert!(c.beta <= initial.beta * 8.0 + 1e-9);
        assert!(c.alpha >= initial.alpha / 8.0 - 1e-9);
    }
}
