//! Application monitoring (paper §3.2).
//!
//! Two mechanisms live here:
//!
//! * [`BenchmarkScheduler`] — relative processor speeds depend on the
//!   application, so each node periodically re-runs a *small
//!   application-specific benchmark*. There is a trade-off between accuracy
//!   and overhead: "processors run the benchmark at such frequency so as not
//!   to exceed the specified overhead". The scheduler enforces that budget.
//! * [`SpeedTracker`] — the coordinator-side normalization of raw benchmark
//!   times into relative speeds in `(0, 1]` (fastest = 1), including the
//!   paper's fallback of using the previous period's data for nodes whose
//!   report was missed.

use sagrid_core::ids::NodeId;
use sagrid_core::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Decides *when* a node should re-run its speed benchmark so that the
/// benchmarking overhead stays within a budget fraction of wall time.
///
/// If the last benchmark took `d`, the next run is scheduled no earlier than
/// `d / budget` after the previous one started: a node whose benchmark takes
/// 1 s under a 5 % budget benchmarks at most every 20 s. Slower (e.g.
/// overloaded) nodes take longer to run the benchmark and therefore
/// benchmark *less* often — the same self-throttling the paper describes.
#[derive(Clone, Debug)]
pub struct BenchmarkScheduler {
    budget: f64,
    last_start: Option<SimTime>,
    last_duration: SimDuration,
    runs: u64,
}

impl BenchmarkScheduler {
    /// Creates a scheduler with the given overhead budget (fraction in
    /// `(0, 1)`), using `expected_duration` to pace the very first run.
    pub fn new(budget: f64, expected_duration: SimDuration) -> Self {
        assert!(
            budget > 0.0 && budget < 1.0,
            "benchmark budget must be a fraction in (0,1)"
        );
        Self {
            budget,
            last_start: None,
            last_duration: expected_duration,
            runs: 0,
        }
    }

    /// Whether a benchmark should run at time `now`. The first call always
    /// returns `true` — a node must measure its speed upon joining.
    pub fn should_run(&self, now: SimTime) -> bool {
        match self.last_start {
            None => true,
            Some(start) => now.saturating_since(start) >= self.min_interval(),
        }
    }

    /// Earliest time the next benchmark may start.
    pub fn next_run_at(&self) -> SimTime {
        match self.last_start {
            None => SimTime::ZERO,
            Some(start) => start + self.min_interval(),
        }
    }

    /// Records a completed benchmark run.
    pub fn record_run(&mut self, started_at: SimTime, duration: SimDuration) {
        self.last_start = Some(started_at);
        self.last_duration = duration;
        self.runs += 1;
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Start time of the most recent run, if any ran yet.
    pub fn last_run_started(&self) -> Option<SimTime> {
        self.last_start
    }

    /// Most recent benchmark duration.
    pub fn last_duration(&self) -> SimDuration {
        self.last_duration
    }

    fn min_interval(&self) -> SimDuration {
        self.last_duration.mul_f64(1.0 / self.budget)
    }
}

/// Coordinator-side speed normalization.
///
/// Stores the most recent raw benchmark duration per node and converts them
/// to relative speeds: `speed_i = min_j(duration_j) / duration_i`, so the
/// fastest node has speed 1.0 and "slower processors are modeled as fast
/// ones that spend a large fraction of the time being idle".
#[derive(Clone, Debug, Default)]
pub struct SpeedTracker {
    durations: BTreeMap<NodeId, SimDuration>,
}

impl SpeedTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records node `n`'s latest benchmark duration (keeps the previous one
    /// until a new measurement arrives — paper: "the coordinator may miss
    /// data … so it has to use data from the previous monitoring period").
    pub fn record(&mut self, n: NodeId, duration: SimDuration) {
        assert!(
            duration > SimDuration::ZERO,
            "benchmark duration must be > 0"
        );
        self.durations.insert(n, duration);
    }

    /// Forgets a node that left or died.
    pub fn remove(&mut self, n: NodeId) {
        self.durations.remove(&n);
    }

    /// Relative speed of node `n` in `(0, 1]`, or `None` if the node has
    /// never benchmarked.
    pub fn relative_speed(&self, n: NodeId) -> Option<f64> {
        let d = self.durations.get(&n)?;
        let min = self.durations.values().min()?;
        Some(min.0 as f64 / d.0 as f64)
    }

    /// All relative speeds, keyed by node.
    pub fn all_relative_speeds(&self) -> BTreeMap<NodeId, f64> {
        let Some(min) = self.durations.values().min().copied() else {
            return BTreeMap::new();
        };
        self.durations
            .iter()
            .map(|(&n, &d)| (n, min.0 as f64 / d.0 as f64))
            .collect()
    }

    /// Number of nodes with a known speed.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether no node has benchmarked yet.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_benchmark_runs_immediately() {
        let s = BenchmarkScheduler::new(0.05, SimDuration::from_secs(1));
        assert!(s.should_run(SimTime::ZERO));
    }

    #[test]
    fn budget_throttles_frequency() {
        let mut s = BenchmarkScheduler::new(0.05, SimDuration::from_secs(1));
        s.record_run(SimTime::ZERO, SimDuration::from_secs(1));
        // 1s benchmark at 5% budget → at most every 20s.
        assert!(!s.should_run(SimTime::from_secs(19)));
        assert!(s.should_run(SimTime::from_secs(20)));
        assert_eq!(s.next_run_at(), SimTime::from_secs(20));
        assert_eq!(s.runs(), 1);
    }

    #[test]
    fn slow_nodes_benchmark_less_often() {
        let mut fast = BenchmarkScheduler::new(0.1, SimDuration::from_secs(1));
        let mut slow = BenchmarkScheduler::new(0.1, SimDuration::from_secs(1));
        fast.record_run(SimTime::ZERO, SimDuration::from_secs(1));
        slow.record_run(SimTime::ZERO, SimDuration::from_secs(5));
        assert_eq!(fast.next_run_at(), SimTime::from_secs(10));
        assert_eq!(slow.next_run_at(), SimTime::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "benchmark budget")]
    fn zero_budget_rejected() {
        let _ = BenchmarkScheduler::new(0.0, SimDuration::from_secs(1));
    }

    #[test]
    fn speed_tracker_normalizes_to_fastest() {
        let mut t = SpeedTracker::new();
        t.record(NodeId(0), SimDuration::from_secs(2));
        t.record(NodeId(1), SimDuration::from_secs(4));
        t.record(NodeId(2), SimDuration::from_secs(8));
        assert_eq!(t.relative_speed(NodeId(0)), Some(1.0));
        assert_eq!(t.relative_speed(NodeId(1)), Some(0.5));
        assert_eq!(t.relative_speed(NodeId(2)), Some(0.25));
    }

    #[test]
    fn speeds_rescale_when_a_faster_node_appears() {
        let mut t = SpeedTracker::new();
        t.record(NodeId(0), SimDuration::from_secs(2));
        assert_eq!(t.relative_speed(NodeId(0)), Some(1.0));
        t.record(NodeId(1), SimDuration::from_secs(1));
        assert_eq!(t.relative_speed(NodeId(0)), Some(0.5));
        assert_eq!(t.relative_speed(NodeId(1)), Some(1.0));
    }

    #[test]
    fn stale_measurements_persist_until_replaced() {
        let mut t = SpeedTracker::new();
        t.record(NodeId(0), SimDuration::from_secs(1));
        // No new measurement for node 0; an overload re-measurement arrives:
        t.record(NodeId(0), SimDuration::from_secs(10));
        assert_eq!(t.relative_speed(NodeId(0)), Some(1.0), "alone again");
        t.record(NodeId(1), SimDuration::from_secs(1));
        assert_eq!(t.relative_speed(NodeId(0)), Some(0.1));
    }

    #[test]
    fn removed_nodes_do_not_anchor_the_scale() {
        let mut t = SpeedTracker::new();
        t.record(NodeId(0), SimDuration::from_secs(1));
        t.record(NodeId(1), SimDuration::from_secs(2));
        t.remove(NodeId(0));
        assert_eq!(t.relative_speed(NodeId(1)), Some(1.0));
        assert_eq!(t.relative_speed(NodeId(0)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn all_relative_speeds_matches_pointwise() {
        let mut t = SpeedTracker::new();
        t.record(NodeId(3), SimDuration::from_millis(500));
        t.record(NodeId(9), SimDuration::from_millis(1500));
        let all = t.all_relative_speeds();
        assert_eq!(all.len(), 2);
        assert!((all[&NodeId(9)] - 1.0 / 3.0).abs() < 1e-12);
    }
}
