//! Property tests for the adaptation machinery.

use proptest::prelude::*;
use sagrid_adapt::coordinator::Decision;
use sagrid_adapt::hierarchy::HierarchicalCoordinator;
use sagrid_adapt::{
    wa_efficiency_of_reports, AdaptPolicy, BenchmarkScheduler, Coordinator,
};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};

/// Strategy: a plausible monitoring report.
fn arb_report(id: u32, n_clusters: u16) -> impl Strategy<Value = MonitoringReport> {
    (
        0u16..n_clusters,
        0.01f64..1.0,  // speed
        0.0f64..1.0,   // busy fraction
        0.0f64..0.5,   // ic fraction (of what's left)
    )
        .prop_map(move |(cluster, speed, busy_f, ic_f)| {
            let total = 1_000_000u64;
            let busy = (busy_f * total as f64) as u64;
            let inter = (ic_f * (total - busy) as f64) as u64;
            MonitoringReport {
                node: NodeId(id),
                cluster: ClusterId(cluster),
                period_end: SimTime::from_secs(180),
                breakdown: OverheadBreakdown {
                    busy: SimDuration(busy),
                    inter_comm: SimDuration(inter),
                    idle: SimDuration(total - busy - inter),
                    ..Default::default()
                },
                speed,
            }
        })
}

fn arb_reports(n: usize, clusters: u16) -> impl Strategy<Value = Vec<MonitoringReport>> {
    (0..n as u32)
        .map(|i| arb_report(i, clusters))
        .collect::<Vec<_>>()
}

proptest! {
    /// Whatever the inputs, the coordinator's decisions respect structural
    /// invariants: it never removes nodes it has not seen, never removes
    /// more than it knows, and never asks for a non-positive addition.
    #[test]
    fn decisions_are_structurally_sound(reports in arb_reports(24, 3)) {
        let mut c = Coordinator::new(AdaptPolicy::default());
        let known: Vec<NodeId> = reports.iter().map(|r| r.node).collect();
        for r in &reports {
            c.record_report(*r);
        }
        match c.evaluate(SimTime::from_secs(180), None) {
            Decision::Add { count, .. } => prop_assert!(count >= 1),
            Decision::RemoveNodes { nodes } => {
                prop_assert!(!nodes.is_empty());
                prop_assert!(nodes.len() < known.len(), "must not empty the computation");
                for n in &nodes {
                    prop_assert!(known.contains(n));
                }
            }
            Decision::RemoveCluster { nodes, cluster } => {
                prop_assert!(!nodes.is_empty());
                for n in &nodes {
                    let r = reports.iter().find(|r| r.node == *n).expect("known node");
                    prop_assert_eq!(r.cluster, cluster);
                }
            }
            Decision::OpportunisticSwap { .. } => {
                prop_assert!(false, "extension disabled by default");
            }
            Decision::None => {}
        }
    }

    /// Evaluation is deterministic: the same reports yield the same
    /// decision.
    #[test]
    fn evaluation_is_deterministic(reports in arb_reports(16, 3)) {
        let mut a = Coordinator::new(AdaptPolicy::default());
        let mut b = Coordinator::new(AdaptPolicy::default());
        for r in &reports {
            a.record_report(*r);
            b.record_report(*r);
        }
        prop_assert_eq!(
            a.evaluate(SimTime::from_secs(180), None),
            b.evaluate(SimTime::from_secs(180), None)
        );
    }

    /// The hierarchical coordinator is decision-equivalent to the flat one
    /// for arbitrary report sets — the §7 hierarchy changes message
    /// counts, never behaviour.
    #[test]
    fn hierarchy_is_always_equivalent(reports in arb_reports(20, 4)) {
        let mut flat = Coordinator::new(AdaptPolicy::default());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for r in &reports {
            flat.record_report(*r);
            hier.record_report(*r);
        }
        let t = SimTime::from_secs(180);
        prop_assert_eq!(flat.evaluate(t, None), hier.evaluate(t, None));
    }

    /// Blacklists only grow, across arbitrary evaluation sequences.
    #[test]
    fn blacklists_are_monotone(batches in prop::collection::vec(arb_reports(12, 3), 1..5)) {
        let mut c = Coordinator::new(AdaptPolicy::default());
        let mut prev_nodes = 0usize;
        let mut prev_clusters = 0usize;
        for (i, batch) in batches.iter().enumerate() {
            for r in batch {
                c.record_report(*r);
            }
            let _ = c.evaluate(SimTime::from_secs(180 * (i as u64 + 1)), None);
            prop_assert!(c.blacklisted_nodes().len() >= prev_nodes);
            prop_assert!(c.blacklisted_clusters().len() >= prev_clusters);
            prev_nodes = c.blacklisted_nodes().len();
            prev_clusters = c.blacklisted_clusters().len();
        }
    }

    /// The benchmark scheduler honours its overhead budget over long
    /// random histories: total benchmark time / elapsed ≤ budget (up to
    /// the one in-flight run).
    #[test]
    fn benchmark_budget_is_respected(
        budget in 0.01f64..0.3,
        durations in prop::collection::vec(100_000u64..10_000_000, 2..40),
    ) {
        let mut s = BenchmarkScheduler::new(budget, SimDuration(durations[0]));
        let mut now = SimTime::ZERO;
        let mut bench_total = 0u64;
        for &d in &durations {
            // Jump to the earliest allowed start.
            now = now.max(s.next_run_at());
            prop_assert!(s.should_run(now));
            s.record_run(now, SimDuration(d));
            bench_total += d;
            now += SimDuration(d);
        }
        let elapsed = now.saturating_since(SimTime::ZERO).0.max(1);
        let overhead = bench_total as f64 / elapsed as f64;
        // The final run may overshoot the window; allow one-run slack.
        let last = *durations.last().expect("non-empty") as f64 / elapsed as f64;
        prop_assert!(
            overhead <= budget + last + 1e-9,
            "overhead {overhead} exceeds budget {budget} (+ slack {last})"
        );
    }

    /// wa_efficiency over reconstructed-from-fractions reports matches the
    /// original to floating-point accuracy (the digest loses nothing the
    /// metric needs).
    #[test]
    fn digest_reconstruction_preserves_the_metric(reports in arb_reports(16, 3)) {
        let original = wa_efficiency_of_reports(reports.iter());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for r in &reports {
            hier.record_report(*r);
        }
        let _ = hier.evaluate(SimTime::from_secs(180), None);
        // After evaluation the main coordinator holds reconstructed
        // reports (minus any it removed); when nothing was removed the
        // metric must match.
        if hier.main().known_nodes() == reports.len() {
            let rebuilt = hier.main().current_wa_efficiency();
            prop_assert!((rebuilt - original).abs() < 1e-6, "{rebuilt} vs {original}");
        }
    }
}
