//! Randomized property tests for the adaptation machinery, driven by the
//! in-repo fixed-seed RNG so every case is reproducible offline.

use sagrid_adapt::coordinator::Decision;
use sagrid_adapt::hierarchy::HierarchicalCoordinator;
use sagrid_adapt::{wa_efficiency_of_reports, AdaptPolicy, BenchmarkScheduler, Coordinator};
use sagrid_core::ids::{ClusterId, NodeId};
use sagrid_core::rng::{Rng64, Xoshiro256StarStar};
use sagrid_core::stats::{MonitoringReport, OverheadBreakdown};
use sagrid_core::time::{SimDuration, SimTime};

const CASES: u64 = 150;

fn rng_for(test: u64, case: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seeded(0xADA7_0000 + test * 1_000 + case)
}

/// A plausible monitoring report with random cluster, speed, and activity
/// split.
fn random_report(rng: &mut impl Rng64, id: u32, n_clusters: u16) -> MonitoringReport {
    let cluster = rng.gen_range(n_clusters as u64) as u16;
    let speed = 0.01 + 0.99 * rng.gen_f64();
    let busy_f = rng.gen_f64();
    let ic_f = 0.5 * rng.gen_f64();
    let total = 1_000_000u64;
    let busy = (busy_f * total as f64) as u64;
    let inter = (ic_f * (total - busy) as f64) as u64;
    MonitoringReport {
        node: NodeId(id),
        cluster: ClusterId(cluster),
        period_end: SimTime::from_secs(180),
        breakdown: OverheadBreakdown {
            busy: SimDuration(busy),
            inter_comm: SimDuration(inter),
            idle: SimDuration(total - busy - inter),
            ..Default::default()
        },
        speed,
    }
}

fn random_reports(rng: &mut impl Rng64, n: usize, clusters: u16) -> Vec<MonitoringReport> {
    (0..n as u32)
        .map(|i| random_report(rng, i, clusters))
        .collect()
}

/// Whatever the inputs, the coordinator's decisions respect structural
/// invariants: it never removes nodes it has not seen, never removes more
/// than it knows, and never asks for a non-positive addition.
#[test]
fn decisions_are_structurally_sound() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let reports = random_reports(&mut rng, 24, 3);
        let mut c = Coordinator::new(AdaptPolicy::default());
        let known: Vec<NodeId> = reports.iter().map(|r| r.node).collect();
        for r in &reports {
            c.record_report(*r);
        }
        match c.evaluate(SimTime::from_secs(180), None) {
            Decision::Add { count, .. } => assert!(count >= 1, "case {case}"),
            Decision::RemoveNodes { nodes } => {
                assert!(!nodes.is_empty(), "case {case}");
                assert!(
                    nodes.len() < known.len(),
                    "case {case}: must not empty the computation"
                );
                for n in &nodes {
                    assert!(known.contains(n), "case {case}");
                }
            }
            Decision::RemoveCluster { nodes, cluster } => {
                assert!(!nodes.is_empty(), "case {case}");
                for n in &nodes {
                    let r = reports.iter().find(|r| r.node == *n).expect("known node");
                    assert_eq!(r.cluster, cluster, "case {case}");
                }
            }
            Decision::OpportunisticSwap { .. } => {
                panic!("case {case}: extension disabled by default");
            }
            Decision::None => {}
        }
    }
}

/// Evaluation is deterministic: the same reports yield the same decision.
#[test]
fn evaluation_is_deterministic() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let reports = random_reports(&mut rng, 16, 3);
        let mut a = Coordinator::new(AdaptPolicy::default());
        let mut b = Coordinator::new(AdaptPolicy::default());
        for r in &reports {
            a.record_report(*r);
            b.record_report(*r);
        }
        assert_eq!(
            a.evaluate(SimTime::from_secs(180), None),
            b.evaluate(SimTime::from_secs(180), None),
            "case {case}"
        );
    }
}

/// The hierarchical coordinator is decision-equivalent to the flat one for
/// arbitrary report sets — the §7 hierarchy changes message counts, never
/// behaviour.
#[test]
fn hierarchy_is_always_equivalent() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let reports = random_reports(&mut rng, 20, 4);
        let mut flat = Coordinator::new(AdaptPolicy::default());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for r in &reports {
            flat.record_report(*r);
            hier.record_report(*r);
        }
        let t = SimTime::from_secs(180);
        assert_eq!(
            flat.evaluate(t, None),
            hier.evaluate(t, None),
            "case {case}"
        );
    }
}

/// Blacklists only grow, across arbitrary evaluation sequences.
#[test]
fn blacklists_are_monotone() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let n_batches = 1 + rng.gen_index(4);
        let mut c = Coordinator::new(AdaptPolicy::default());
        let mut prev_nodes = 0usize;
        let mut prev_clusters = 0usize;
        for i in 0..n_batches {
            for r in random_reports(&mut rng, 12, 3) {
                c.record_report(r);
            }
            let _ = c.evaluate(SimTime::from_secs(180 * (i as u64 + 1)), None);
            assert!(c.blacklisted_nodes().len() >= prev_nodes, "case {case}");
            assert!(
                c.blacklisted_clusters().len() >= prev_clusters,
                "case {case}"
            );
            prev_nodes = c.blacklisted_nodes().len();
            prev_clusters = c.blacklisted_clusters().len();
        }
    }
}

/// The benchmark scheduler honours its overhead budget over long random
/// histories: total benchmark time / elapsed ≤ budget (up to the one
/// in-flight run).
#[test]
fn benchmark_budget_is_respected() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let budget = 0.01 + 0.29 * rng.gen_f64();
        let n = 2 + rng.gen_index(38);
        let durations: Vec<u64> = (0..n).map(|_| 100_000 + rng.gen_range(9_900_000)).collect();
        let mut s = BenchmarkScheduler::new(budget, SimDuration(durations[0]));
        let mut now = SimTime::ZERO;
        let mut bench_total = 0u64;
        for &d in &durations {
            // Jump to the earliest allowed start.
            now = now.max(s.next_run_at());
            assert!(s.should_run(now), "case {case}");
            s.record_run(now, SimDuration(d));
            bench_total += d;
            now += SimDuration(d);
        }
        let elapsed = now.saturating_since(SimTime::ZERO).0.max(1);
        let overhead = bench_total as f64 / elapsed as f64;
        // The final run may overshoot the window; allow one-run slack.
        let last = *durations.last().expect("non-empty") as f64 / elapsed as f64;
        assert!(
            overhead <= budget + last + 1e-9,
            "case {case}: overhead {overhead} exceeds budget {budget} (+ slack {last})"
        );
    }
}

/// wa_efficiency over reconstructed-from-fractions reports matches the
/// original to floating-point accuracy (the digest loses nothing the
/// metric needs).
#[test]
fn digest_reconstruction_preserves_the_metric() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let reports = random_reports(&mut rng, 16, 3);
        let original = wa_efficiency_of_reports(reports.iter());
        let mut hier = HierarchicalCoordinator::new(AdaptPolicy::default());
        for r in &reports {
            hier.record_report(*r);
        }
        let _ = hier.evaluate(SimTime::from_secs(180), None);
        // After evaluation the main coordinator holds reconstructed
        // reports (minus any it removed); when nothing was removed the
        // metric must match.
        if hier.main().known_nodes() == reports.len() {
            let rebuilt = hier.main().current_wa_efficiency();
            assert!(
                (rebuilt - original).abs() < 1e-6,
                "case {case}: {rebuilt} vs {original}"
            );
        }
    }
}
